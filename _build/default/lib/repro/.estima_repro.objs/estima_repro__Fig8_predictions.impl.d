lib/repro/fig8_predictions.ml: Error Estima Estima_counters Estima_machine Estima_workloads Lab List Machines Option Predictor Printf Render Series Suite Time_extrapolation
