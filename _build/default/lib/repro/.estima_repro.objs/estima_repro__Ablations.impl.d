lib/repro/ablations.ml: Approximation Array Error Estima Estima_counters Estima_machine Estima_workloads Lab List Machines Option Predictor Render Sample Series Suite
