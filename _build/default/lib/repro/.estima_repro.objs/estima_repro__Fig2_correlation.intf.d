lib/repro/fig2_correlation.mli:
