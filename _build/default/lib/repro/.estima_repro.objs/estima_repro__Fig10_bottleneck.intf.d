lib/repro/fig10_bottleneck.mli: Estima
