lib/repro/table4_errors.mli:
