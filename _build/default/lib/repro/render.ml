let heading title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n| %s |\n%s\n%!" bar title bar

let subheading title = Printf.printf "\n-- %s --\n%!" title

let table ~header ~rows =
  let ncols = List.length header in
  List.iter
    (fun row -> if List.length row <> ncols then invalid_arg "Render.table: ragged rows")
    rows;
  let all = header :: rows in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)
  in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%s%s  " cell (String.make (List.nth widths c - String.length cell) ' '))
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let series ~title ~grid ~columns =
  List.iter
    (fun (name, values) ->
      if Array.length values <> Array.length grid then
        invalid_arg (Printf.sprintf "Render.series: column %s length mismatch" name))
    columns;
  subheading title;
  let header = "cores" :: List.map fst columns in
  let rows =
    Array.to_list grid
    |> List.mapi (fun i n ->
           Printf.sprintf "%.0f" n :: List.map (fun (_, v) -> Printf.sprintf "%.4g" v.(i)) columns)
  in
  table ~header ~rows

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let time_s x = Printf.sprintf "%.4gs" x

let float3 x = Printf.sprintf "%.3g" x

let verdict = Estima.Error.verdict_to_string
