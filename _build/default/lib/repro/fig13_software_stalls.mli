(** Figures 13 & 14: the value of software stalled cycles (Section 5.3).

    For every workload with an instrumented runtime (SwissTM statistics or
    the pthread wrapper), compare Opteron prediction errors with and
    without the software categories.  Figure 14's streamcluster close-up —
    hardware-only stalls miss the synchronisation bottleneck and correlate
    worse with time — is included as correlations. *)

type row = {
  name : string;
  error_without : float;
  error_with : float;
  improvement : float;  (** 1 - with/without (positive = software helps). *)
}

type streamcluster_detail = {
  corr_hw_only : float;
  corr_hw_sw : float;
  grid : float array;
  times : float array;
  spc_hw : float array;
  spc_hw_sw : float array;
}

type result = { rows : row list; average_improvement : float; streamcluster : streamcluster_detail }

val compute : unit -> result

val run : unit -> unit
