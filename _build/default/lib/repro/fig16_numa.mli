(** Figure 16: accounting for NUMA by measuring past the socket boundary
    (Section 5.5).

    On Xeon20, a 10-core window sees no cross-socket accesses; including a
    few cores of the second socket (here 14) lets ESTIMA capture the NUMA
    trends and improves full-machine predictions. *)

type case = {
  name : string;
  error_from_10 : float;
  error_from_14 : float;
  improved : bool;
}

type result = case list

val compute : unit -> result

val run : unit -> unit
