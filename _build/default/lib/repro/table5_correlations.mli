(** Table 5: correlation of stalled cycles per core with execution time
    over full-machine sweeps of all three machines (Opteron, Xeon20,
    Xeon48).  Software stalls are included for the workloads whose runtime
    reports them, matching the paper.  High correlations (mostly > 0.9)
    justify the whole method; errors then stem from function
    approximation, not from the stalls-tell-the-story assumption. *)

type row = { name : string; opteron : float; xeon20 : float; xeon48 : float }

type result = {
  rows : row list;
  average : float * float * float;
  minimum : float * float * float;
}

val compute : unit -> result

val run : unit -> unit
