(** Figure 12: the lower-correlation cases of Table 5.

    lock-based hash table on Xeon20 and lock-free skip list on Xeon48:
    time and stalls per core have similar curves, but small out-of-sync
    point-to-point changes depress the Pearson coefficient — without
    breaking the extrapolation (Table 4 still predicts them well). *)

type case = {
  name : string;
  machine : string;
  grid : float array;
  times : float array;
  stalls_per_core : float array;
  correlation : float;
}

type result = case list

val compute : unit -> result

val run : unit -> unit
