let experiments =
  [
    ("F1", Fig1_kmeans_time.run);
    ("F2", Fig2_correlation.run);
    ("F5", Fig5_intruder_walkthrough.run);
    ("F6", Fig6_production.run);
    ("T4", Table4_errors.run);
    ("F7", Fig7_vs_time.run);
    ("F8", Fig8_predictions.run);
    ("F9", Fig9_weak_scaling.run);
    ("F10", Fig10_bottleneck.run);
    ("T5", Table5_correlations.run);
    ("F12", Fig12_low_corr.run);
    ("T6", Table6_frontend.run);
    ("F13", Fig13_software_stalls.run);
    ("F15", Fig15_limitations.run);
    ("F16", Fig16_numa.run);
    ("T7", Table7_xeon48.run);
    ("ABL", Ablations.run);
  ]

let run_all () = List.iter (fun (_, run) -> run ()) experiments

let run_one id =
  match List.assoc_opt (String.uppercase_ascii id) experiments with
  | Some run ->
      run ();
      Ok ()
  | None ->
      Error
        (Printf.sprintf "unknown experiment %S; valid ids: %s" id
           (String.concat ", " (List.map fst experiments)))
