(** Table 4: maximum prediction errors for the 19 benchmark workloads.

    Opteron: measure one processor (12 cores), predict for 2, 3 and 4
    processors; Xeon20: measure one socket (10 cores), predict the full
    machine.  Errors are the maximum relative deviation of predicted from
    measured execution time over the extrapolated region up to each target
    size, with the summary statistics the paper prints (average, standard
    deviation, maximum). *)

type row = {
  name : string;
  family : string;
  opteron_2cpu : float;
  opteron_3cpu : float;
  opteron_4cpu : float;
  xeon20_2cpu : float;
  opteron_agrees : bool;  (** Scalability-verdict agreement on the full Opteron. *)
  xeon20_agrees : bool;
}

type summary = { average : float; std_dev : float; maximum : float }

type result = {
  rows : row list;
  opteron_4cpu_summary : summary;
  xeon20_summary : summary;
}

val compute : unit -> result

val summarize : (row -> float) -> row list -> summary

val run : unit -> unit
