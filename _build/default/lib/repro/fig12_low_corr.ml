open Estima_machine
open Estima_workloads
open Estima_counters
open Estima_numerics

type case = {
  name : string;
  machine : string;
  grid : float array;
  times : float array;
  stalls_per_core : float array;
  correlation : float;
}

type result = case list

let one name machine =
  let entry = Option.get (Suite.find name) in
  let truth = Lab.sweep ~entry ~machine () in
  let include_software = entry.Suite.plugins <> [] in
  let times = Series.times truth in
  let stalls_per_core = Series.stalls_per_core truth ~include_frontend:false ~include_software in
  {
    name;
    machine = machine.Topology.name;
    grid = Series.threads truth;
    times;
    stalls_per_core;
    correlation = Stats.pearson stalls_per_core times;
  }

let compute () = [ one "lock-based HT" Machines.xeon20; one "lock-free SL" Machines.xeon48 ]

let run () =
  Render.heading "[F12] Figure 12 - time vs stalls for the lower-correlation cases";
  List.iter
    (fun c ->
      Render.series
        ~title:(Printf.sprintf "%s on %s (correlation %.2f)" c.name c.machine c.correlation)
        ~grid:c.grid
        ~columns:[ ("time (s)", c.times); ("stalls/core", c.stalls_per_core) ])
    (compute ())
