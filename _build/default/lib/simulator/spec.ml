type lock_kind = Mutex | Spinlock

type sync =
  | No_sync
  | Locked of { kind : lock_kind; num_locks : int; cs_cycles : float; cs_mem_accesses : int }
  | Transactional of { reads : int; writes : int; key_space : int; abort_penalty_cycles : float }
  | Lock_free of { cas_cost_cycles : float; retry_contention : float }

type op = {
  useful_cycles : float;
  useful_cv : float;
  mem_reads : int;
  mem_writes : int;
  shared_fraction : float;
  write_shared_fraction : float;
  fp_fraction : float;
  dependency_factor : float;
  branch_mpki : float;
  frontend_cycles : float;
  sync : sync;
  barrier_every : int option;
  barrier_kind : lock_kind;
}

type scaling = Strong of int | Weak of int

type t = {
  name : string;
  scaling : scaling;
  private_footprint_lines : int;
  shared_footprint_lines : int;
  footprint_scales_with_threads : bool;
  op : op;
}

let dataset_scale t k =
  if k <= 0.0 then invalid_arg "Spec.dataset_scale: non-positive factor";
  let scale_int n = int_of_float (Float.round (float_of_int n *. k)) in
  let scaling =
    match t.scaling with
    | Strong total -> Strong (scale_int total)
    | Weak per_thread -> Weak (scale_int per_thread)
  in
  {
    t with
    scaling;
    private_footprint_lines = scale_int t.private_footprint_lines;
    shared_footprint_lines = scale_int t.shared_footprint_lines;
  }

let ops_for t ~threads =
  if threads <= 0 then invalid_arg "Spec.ops_for: non-positive thread count";
  match t.scaling with
  | Strong total -> max 1 (total / threads)
  | Weak per_thread -> per_thread

let total_footprint_lines t ~threads =
  (* Private data is per-thread either way; weak scaling additionally grows
     the shared dataset with the thread count. *)
  let private_total = t.private_footprint_lines * threads in
  let shared =
    if t.footprint_scales_with_threads then t.shared_footprint_lines * threads
    else t.shared_footprint_lines
  in
  private_total + shared

let validate t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let o = t.op in
  if o.useful_cycles <= 0.0 then fail "%s: non-positive useful cycles" t.name
  else if o.useful_cv < 0.0 then fail "%s: negative cv" t.name
  else if o.mem_reads < 0 || o.mem_writes < 0 then fail "%s: negative access counts" t.name
  else if o.shared_fraction < 0.0 || o.shared_fraction > 1.0 then fail "%s: shared_fraction range" t.name
  else if o.write_shared_fraction < 0.0 || o.write_shared_fraction > 1.0 then
    fail "%s: write_shared_fraction range" t.name
  else if o.fp_fraction < 0.0 || o.fp_fraction > 1.0 then fail "%s: fp_fraction range" t.name
  else if o.dependency_factor < 0.0 || o.dependency_factor > 1.0 then fail "%s: dependency_factor range" t.name
  else if o.branch_mpki < 0.0 || o.frontend_cycles < 0.0 then fail "%s: negative stall rates" t.name
  else if t.private_footprint_lines < 0 || t.shared_footprint_lines < 0 then
    fail "%s: negative footprint" t.name
  else
    match o.sync with
    | No_sync -> Ok ()
    | Locked l ->
        if l.num_locks <= 0 then fail "%s: need at least one lock" t.name
        else if l.cs_cycles < 0.0 || l.cs_mem_accesses < 0 then fail "%s: bad critical section" t.name
        else Ok ()
    | Transactional tx ->
        if tx.reads < 0 || tx.writes < 0 then fail "%s: negative tx sets" t.name
        else if tx.key_space <= 0 then fail "%s: empty key space" t.name
        else if tx.writes > tx.key_space then fail "%s: write set exceeds key space" t.name
        else Ok ()
    | Lock_free lf ->
        if lf.cas_cost_cycles < 0.0 || lf.retry_contention < 0.0 then fail "%s: bad lock-free params" t.name
        else Ok ()
