(** Per-run stall accounting.

    One ledger per simulated thread; the engine merges them into the run
    result.  Cycle counts are floats (probabilistic cost models produce
    fractional expectations). *)

type t

val create : unit -> t

val add : t -> Stall.cause -> float -> unit
(** Negative amounts are rejected with [Invalid_argument]. *)

val get : t -> Stall.cause -> float

val add_useful : t -> float -> unit

val useful : t -> float

val merge : t list -> t
(** Sum of all ledgers. *)

val total_stalls : t -> float
(** All causes, hardware and software. *)

val total_hardware_backend : t -> float

val to_assoc : t -> (Stall.cause * float) list
(** Every cause in {!Stall.all} order. *)
