(** The simulation engine.

    Executes a workload {!Spec.t} on a {!Estima_machine.Topology.t} at a
    given thread count and returns the merged stall ledger, the makespan
    and per-thread detail.  Threads are advanced in global-time order
    (always the lagging thread next), so shared-resource queueing — locks,
    memory controllers, barriers, STM conflicts — emerges from actual
    interleaving rather than closed-form formulas. *)

type thread_stats = {
  ledger : Ledger.t;
  finish_cycles : float;
  ops_executed : int;
  location : Estima_machine.Topology.location;
}

type result = {
  machine : Estima_machine.Topology.t;
  spec_name : string;
  threads : int;
  cycles : float;  (** Makespan: when the last thread finishes. *)
  time_seconds : float;  (** Makespan divided by the clock frequency. *)
  ledger : Ledger.t;  (** All threads merged. *)
  per_thread : thread_stats array;
  ops_executed : int;
  footprint_lines : int;
  lock_contended : int;  (** Contended lock acquisitions (diagnostics). *)
}

val run : ?seed:int -> machine:Estima_machine.Topology.t -> spec:Spec.t -> threads:int -> unit -> result
(** Runs the workload to completion.  Deterministic for a given
    [(machine, spec, threads, seed)].  Raises [Invalid_argument] when the
    spec fails {!Spec.validate} or [threads] exceeds the machine. *)

val stalls_per_core : result -> float
(** Total stall cycles (hardware backend + software) divided by the thread
    count: the quantity at the centre of the paper's method. *)
