open Estima_machine

type plan = {
  p_miss_private_to_llc : float;
  p_miss_private_data_memory : float;
  p_miss_shared_data_memory : float;
}

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let plan machine ~spec ~threads ~sockets_used =
  if threads <= 0 || sockets_used <= 0 then invalid_arg "Cache.plan: bad configuration";
  let timing = machine.Topology.timing in
  let shared_lines =
    float_of_int
      (if spec.Spec.footprint_scales_with_threads then spec.Spec.shared_footprint_lines * threads
       else spec.Spec.shared_footprint_lines)
  in
  let private_lines = float_of_int spec.Spec.private_footprint_lines in
  (* A thread's competitive working set: its private data plus the shared
     data it touches. *)
  let per_thread_ws = Float.max 1.0 (private_lines +. shared_lines) in
  let p_hit_private = clamp01 (float_of_int timing.Topology.private_cache_lines /. per_thread_ws) in
  (* LLC pressure on the busiest socket: the threads it hosts plus the
     shared dataset. *)
  let threads_per_socket = float_of_int ((threads + sockets_used - 1) / sockets_used) in
  let socket_ws = Float.max 1.0 ((private_lines *. threads_per_socket) +. shared_lines) in
  let p_hit_llc = clamp01 (float_of_int timing.Topology.llc_lines_per_socket /. socket_ws) in
  let p_miss_private = 1.0 -. p_hit_private in
  {
    p_miss_private_to_llc = p_miss_private *. p_hit_llc;
    p_miss_private_data_memory = p_miss_private *. (1.0 -. p_hit_llc);
    p_miss_shared_data_memory = p_miss_private *. (1.0 -. p_hit_llc);
  }

let coherence_probability ~spec ~active_threads =
  if active_threads <= 1 then 0.0
  else
    let o = spec.Spec.op in
    let accesses = float_of_int (o.Spec.mem_reads + o.Spec.mem_writes) in
    if accesses <= 0.0 then 0.0
    else
      (* Intensity of shared-line writes by the other threads: the higher it
         is, the more likely a shared access finds the line invalid or dirty
         remotely.  Saturates well below 1 (not every access can be a
         transfer). *)
      let write_share =
        float_of_int o.Spec.mem_writes *. o.Spec.write_shared_fraction /. accesses
      in
      let pressure = write_share *. float_of_int (active_threads - 1) in
      Float.min 0.95 (o.Spec.shared_fraction *. pressure)
