(** Behavioural specification of a simulated workload.

    A workload is described by the per-operation behaviour of its threads:
    compute cost, memory accesses, sharing, and the synchronisation regime.
    The workload library compiles each benchmark to one of these; the
    engine executes it on a machine model. *)

type lock_kind =
  | Mutex  (** pthread-style: brief spin then block, wake-up penalty. *)
  | Spinlock  (** test-and-set: all waiting is spinning. *)

type sync =
  | No_sync  (** Embarrassingly parallel work. *)
  | Locked of {
      kind : lock_kind;
      num_locks : int;  (** Striping: contention divides across locks. *)
      cs_cycles : float;  (** Critical-section compute cost. *)
      cs_mem_accesses : int;  (** Line accesses inside the section. *)
    }
  | Transactional of {
      reads : int;  (** Read-set size per transaction. *)
      writes : int;  (** Write-set size per transaction. *)
      key_space : int;  (** Keys conflicts are drawn over. *)
      abort_penalty_cycles : float;  (** Backoff cost added per abort. *)
    }
  | Lock_free of {
      cas_cost_cycles : float;  (** Cost of one CAS attempt. *)
      retry_contention : float;
          (** Retry-probability slope per concurrent thread; models CAS
              failure under contention. *)
    }

type op = {
  useful_cycles : float;  (** Mean useful compute per operation. *)
  useful_cv : float;  (** Coefficient of variation of the above. *)
  mem_reads : int;  (** Cache-line reads per operation. *)
  mem_writes : int;  (** Cache-line writes per operation. *)
  shared_fraction : float;  (** Fraction of accesses to shared data. *)
  write_shared_fraction : float;
      (** Fraction of *writes* that touch shared lines; drives coherence. *)
  fp_fraction : float;  (** Fraction of compute subject to FPU pressure. *)
  dependency_factor : float;
      (** Fraction of compute lost to dependency chains (RS pressure). *)
  branch_mpki : float;  (** Branch mispredictions per 1000 useful cycles. *)
  frontend_cycles : float;  (** Frontend stall cycles per operation. *)
  sync : sync;
  barrier_every : int option;
      (** Total operations (across all threads) per program phase; a
          barrier separates phases.  Phase-structured programs have a fixed
          number of barriers regardless of thread count, so per-thread
          phase work shrinks as threads grow while barrier cost rises —
          the classic source of barrier-bound collapse. *)
  barrier_kind : lock_kind;
      (** How the barrier is built: [Mutex] models PARSEC's
          pthread_mutex/trylock barriers (serialised wakeups — the
          streamcluster bottleneck of Section 4.6); [Spinlock] models the
          paper's test-and-set fix. *)
}

type scaling =
  | Strong of int  (** Total operations, divided across threads. *)
  | Weak of int  (** Operations per thread. *)

type t = {
  name : string;
  scaling : scaling;
  private_footprint_lines : int;  (** Per-thread private working set. *)
  shared_footprint_lines : int;  (** Shared working set (whole run). *)
  footprint_scales_with_threads : bool;
      (** Weak-scaling datasets grow with the thread count. *)
  op : op;
}

val dataset_scale : t -> float -> t
(** [dataset_scale t k] multiplies the footprints (and for [Strong] runs the
    total operation count) by [k]: the paper's Section 4.5 "2x dataset"
    configuration.  Raises [Invalid_argument] if [k <= 0]. *)

val ops_for : t -> threads:int -> int
(** Operations each thread executes. *)

val total_footprint_lines : t -> threads:int -> int

val validate : t -> (unit, string) result
