open Estima_machine

(* Queueing is modelled statistically rather than by reserving ports with
   absolute timestamps: threads execute whole operations at a time, so
   their clocks are mutually skewed by up to an operation, and literal
   timestamp reservations would let "future" requests block "past" ones.
   Instead each controller measures its arrival rate — fills per cycle over
   a fixed window of the controller's high-water clock — and charges an
   M/M/c-style waiting time.  The loop is self-stabilising: overload
   lengthens fills, which lengthens operations, which lowers the offered
   load back towards the controller's capacity. *)

type controller = {
  mutable high_water : float;  (** Latest request time seen (monotone). *)
  mutable window_start : float;
  mutable window_fills : int;
  mutable rate : float;  (** Fills per cycle over the last full window. *)
  mutable fills : int;
}

type t = { machine : Topology.t; controllers : controller array }

let window_cycles = 20_000.0

let rho_cap = 0.98

(* One controller per chip: multi-chip packages (the Opteron 6172 MCM)
   expose one memory controller per die, so a single-socket measurement
   window already shows load spreading across controllers. *)
let controller_index t ~socket ~chip =
  let chips = t.machine.Topology.chips_per_socket in
  if socket < 0 || socket >= t.machine.Topology.sockets || chip < 0 || chip >= chips then
    invalid_arg "Memory: unknown controller";
  (socket * chips) + chip

let create machine =
  {
    machine;
    controllers =
      Array.init
        (machine.Topology.sockets * machine.Topology.chips_per_socket)
        (fun _ -> { high_water = 0.0; window_start = 0.0; window_fills = 0; rate = 0.0; fills = 0 });
  }

let request t ~socket ~chip ~now ~hops =
  let c = t.controllers.(controller_index t ~socket ~chip) in
  let timing = t.machine.Topology.timing in
  let service = float_of_int timing.Topology.memory_service_cycles in
  let ports = float_of_int timing.Topology.memory_ports_per_controller in
  c.high_water <- Float.max c.high_water now;
  let elapsed = c.high_water -. c.window_start in
  if elapsed >= window_cycles then begin
    c.rate <- float_of_int c.window_fills /. elapsed;
    c.window_start <- c.high_water;
    c.window_fills <- 0
  end;
  c.window_fills <- c.window_fills + 1;
  c.fills <- c.fills + 1;
  let rho = Float.min rho_cap (c.rate *. service /. ports) in
  let queue_delay = service *. rho *. rho /. (ports *. (1.0 -. rho)) in
  let dram = float_of_int (Topology.memory_latency t.machine ~hops) in
  (queue_delay, queue_delay +. dram)

let reset t =
  Array.iter
    (fun c ->
      c.high_water <- 0.0;
      c.window_start <- 0.0;
      c.window_fills <- 0;
      c.rate <- 0.0;
      c.fills <- 0)
    t.controllers

let total_fills t ~socket ~chip = t.controllers.(controller_index t ~socket ~chip).fills
