(** Physical stall causes tracked by the simulator.

    The simulator attributes every non-useful cycle to one of these causes.
    {!Estima_counters.Event} later maps causes onto vendor-specific
    performance-counter event codes (AMD Table 2, Intel Table 3); keeping
    the two vocabularies separate mirrors the paper's setup, where the same
    application produces different counter sets on different machines. *)

type cause =
  | Miss_private  (** Private-cache miss served by the shared LLC. *)
  | Miss_memory  (** LLC miss: DRAM latency (local or remote). *)
  | Memory_queue  (** Queueing delay at a saturated memory controller. *)
  | Coherence  (** Invalidations and cache-to-cache transfers. *)
  | Dependency  (** Dependency-chain (reservation-station) pressure. *)
  | Fp_pressure  (** Floating-point unit backlog. *)
  | Branch_recovery  (** Branch misprediction recovery. *)
  | Frontend  (** Instruction fetch/decode stalls (not used by default). *)
  | Lock_spin  (** Software: spinning on a busy lock. *)
  | Barrier_wait  (** Software: waiting at a barrier. *)
  | Stm_abort  (** Software: cycles of aborted transactions. *)

val all : cause list

val label : cause -> string

val is_software : cause -> bool
(** Lock_spin, Barrier_wait and Stm_abort: only observable when the runtime
    is instrumented (the paper's pthread wrapper / SwissTM statistics). *)

val is_frontend : cause -> bool
(** Frontend stalls are excluded from ESTIMA's default event set
    (Section 5.2). *)

val is_hardware_backend : cause -> bool
(** The causes that vendor backend-stall counters observe. *)

val index : cause -> int
(** Dense index for ledger arrays; [0 <= index c < count]. *)

val count : int

val of_index : int -> cause
(** Inverse of {!index}; raises [Invalid_argument] out of range. *)
