lib/simulator/memory.mli: Estima_machine
