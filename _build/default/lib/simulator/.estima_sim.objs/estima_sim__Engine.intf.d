lib/simulator/engine.mli: Estima_machine Ledger Spec
