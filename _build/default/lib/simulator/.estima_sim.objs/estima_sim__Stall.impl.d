lib/simulator/stall.ml: Printf
