lib/simulator/memory.ml: Array Estima_machine Float Topology
