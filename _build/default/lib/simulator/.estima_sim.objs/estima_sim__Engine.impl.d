lib/simulator/engine.ml: Allocation Array Cache Estima_machine Estima_numerics Float Hashtbl Ledger List Lock Memory Option Spec Stall Stm Topology
