lib/simulator/cache.mli: Estima_machine Spec
