lib/simulator/stm.mli: Estima_numerics
