lib/simulator/stall.mli:
