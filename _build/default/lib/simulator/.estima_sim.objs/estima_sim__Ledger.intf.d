lib/simulator/ledger.mli: Stall
