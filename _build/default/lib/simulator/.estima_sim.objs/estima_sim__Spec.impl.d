lib/simulator/spec.ml: Float Printf
