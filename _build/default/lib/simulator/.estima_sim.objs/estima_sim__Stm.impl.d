lib/simulator/stm.ml: Estima_numerics
