lib/simulator/lock.mli: Spec
