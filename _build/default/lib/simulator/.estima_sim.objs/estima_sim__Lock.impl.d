lib/simulator/lock.ml: Array Spec
