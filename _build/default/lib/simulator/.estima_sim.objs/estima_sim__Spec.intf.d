lib/simulator/spec.mli:
