lib/simulator/ledger.ml: Array List Stall
