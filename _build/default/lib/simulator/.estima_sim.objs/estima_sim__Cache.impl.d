lib/simulator/cache.ml: Estima_machine Float Spec Topology
