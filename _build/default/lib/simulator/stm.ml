type t = {
  reads : int;
  writes : int;
  key_space : int;
  abort_penalty_cycles : float;
  line_transfer_cycles : float;
  mutable committed_writes : float;
}

type attempt_result = {
  commit_at : float;
  aborted_attempts : int;
  abort_cycles : float;
  conflict_coherence : float;
}

let max_attempts = 64

let create ~reads ~writes ~key_space ~abort_penalty_cycles ~line_transfer_cycles =
  if key_space <= 0 then invalid_arg "Stm.create: empty key space";
  if reads < 0 || writes < 0 then invalid_arg "Stm.create: negative set sizes";
  { reads; writes; key_space; abort_penalty_cycles; line_transfer_cycles; committed_writes = 0.0 }

let record_commit t ~writes_at =
  ignore writes_at;
  t.committed_writes <- t.committed_writes +. float_of_int t.writes

let observed_write_rate t ~at = if at <= 0.0 then 0.0 else t.committed_writes /. at

let run_transaction t ~rng ~now ~duration ~threads_active =
  if duration < 0.0 then invalid_arg "Stm.run_transaction: negative duration";
  if threads_active <= 0 then invalid_arg "Stm.run_transaction: no threads";
  let footprint = float_of_int (t.reads + t.writes) in
  let share_of_others = float_of_int (threads_active - 1) /. float_of_int threads_active in
  let clock = ref now in
  let aborts = ref 0 in
  let abort_cycles = ref 0.0 in
  let coherence = ref 0.0 in
  let committed = ref false in
  while not !committed do
    (* Conflicting-write arrival rate over this attempt's window. *)
    let rate = observed_write_rate t ~at:!clock *. share_of_others in
    let lambda = rate *. duration *. footprint /. float_of_int t.key_space in
    let p_abort = 1.0 -. exp (-.lambda) in
    if !aborts < max_attempts - 1 && Estima_numerics.Rng.bool rng p_abort then begin
      incr aborts;
      (* The attempt runs (on average) half its window before the conflict
         is detected on validation, then pays backoff that grows with the
         retry count (contention management). *)
      let backoff = t.abort_penalty_cycles *. float_of_int (min !aborts 10) in
      let burnt = (0.5 *. duration) +. backoff in
      abort_cycles := !abort_cycles +. burnt;
      coherence := !coherence +. (float_of_int t.writes *. t.line_transfer_cycles);
      (* Eager STM: the aborted attempt acquired its write locks before
         failing validation, so it conflicts others just like a commit.
         This positive feedback is what makes contended STM collapse. *)
      t.committed_writes <- t.committed_writes +. float_of_int t.writes;
      clock := !clock +. burnt
    end
    else begin
      clock := !clock +. duration;
      committed := true
    end
  done;
  record_commit t ~writes_at:!clock;
  { commit_at = !clock; aborted_attempts = !aborts; abort_cycles = !abort_cycles; conflict_coherence = !coherence }
