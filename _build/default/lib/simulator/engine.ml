open Estima_machine
module Rng = Estima_numerics.Rng

type thread_stats = {
  ledger : Ledger.t;
  finish_cycles : float;
  ops_executed : int;
  location : Topology.location;
}

type result = {
  machine : Topology.t;
  spec_name : string;
  threads : int;
  cycles : float;
  time_seconds : float;
  ledger : Ledger.t;
  per_thread : thread_stats array;
  ops_executed : int;
  footprint_lines : int;
  lock_contended : int;
}

type phase = Running | Parked of float | Done

type thread_state = {
  id : int;
  loc : Topology.location;
  rng : Rng.t;
  led : Ledger.t;
  mutable clock : float;
  mutable ops_left : int;
  mutable ops_done : int;
  mutable ops_since_barrier : int;
  mutable phase : phase;
  smt_shared : bool;  (** An SMT sibling shares this physical core. *)
}

let branch_penalty_cycles = 15.0

let barrier_base_cycles = 200.0

(* Throughput loss when two SMT threads share a core: each runs at ~0.65 of
   the solo rate, i.e. the same work takes ~1.35x the core cycles. *)
let smt_slowdown = 1.35

(* Stochastic rounding keeps expected access counts exact while issuing an
   integral number of controller requests. *)
let sround rng x =
  let base = Float.to_int (Float.floor x) in
  let frac = x -. Float.floor x in
  if Rng.bool rng frac then base + 1 else base

let shared_home_socket = 0

let run ?(seed = 1) ~machine ~spec ~threads () =
  (match Spec.validate spec with Ok () -> () | Error e -> invalid_arg ("Engine.run: " ^ e));
  let placement = Allocation.place machine ~threads in
  let sockets_used = Allocation.sockets_used placement in
  let plan = Cache.plan machine ~spec ~threads ~sockets_used in
  let memory = Memory.create machine in
  let timing = machine.Topology.timing in
  let llc_latency = float_of_int (timing.Topology.llc_hit_cycles - timing.Topology.l1_hit_cycles) in
  (* Cache-to-cache transfer cost: the base (intra-chip) cost plus the
     expected interconnect penalty for a transfer between two random
     participating threads — cross-socket transfers pay the socket hop,
     cross-chip (MCM) transfers the chip hop.  This is what makes shared
     lines visibly more expensive once a run spans sockets. *)
  let line_transfer =
    let base = float_of_int (2 * timing.Topology.llc_hit_cycles) in
    let n = Array.length placement in
    if n <= 1 then base
    else begin
      let pairs = ref 0 and cross_socket = ref 0 and cross_chip = ref 0 in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if i < j then begin
                incr pairs;
                match Topology.numa_hops a b with
                | 2 -> incr cross_socket
                | 1 -> incr cross_chip
                | _ -> ()
              end)
            placement)
        placement;
      let fp = float_of_int !pairs in
      (* Directory-based transfers amortise part of the interconnect cost;
         charge half the raw hop penalty per transfer. *)
      base
      +. (0.5 *. float_of_int !cross_socket /. fp
         *. float_of_int timing.Topology.remote_socket_penalty_cycles)
      +. (0.5 *. float_of_int !cross_chip /. fp
         *. float_of_int timing.Topology.remote_chip_penalty_cycles)
    end
  in
  let o = spec.Spec.op in
  let ops_per_thread = Spec.ops_for spec ~threads in
  (* barrier_every counts TOTAL operations per phase; each thread's share
     of a phase shrinks as threads are added. *)
  let barrier_interval =
    Option.map (fun total -> max 1 (total / threads)) o.Spec.barrier_every
  in
  let root_rng = Rng.create seed in
  (* Shared synchronisation structures. *)
  let lock_bank =
    match o.Spec.sync with
    | Spec.Locked { kind; num_locks; _ } ->
        Some (Lock.create kind ~count:num_locks ~line_transfer_cycles:line_transfer)
    | _ -> None
  in
  let stm =
    match o.Spec.sync with
    | Spec.Transactional { reads; writes; key_space; abort_penalty_cycles } ->
        Some (Stm.create ~reads ~writes ~key_space ~abort_penalty_cycles ~line_transfer_cycles:line_transfer)
    | _ -> None
  in
  let core_key l = (l.Topology.socket, l.Topology.chip, l.Topology.core) in
  let core_use = Hashtbl.create 64 in
  Array.iter
    (fun l ->
      let k = core_key l in
      Hashtbl.replace core_use k (1 + Option.value ~default:0 (Hashtbl.find_opt core_use k)))
    placement;
  let states =
    Array.init threads (fun i ->
        {
          id = i;
          loc = placement.(i);
          rng = Rng.split root_rng;
          led = Ledger.create ();
          clock = 0.0;
          ops_left = ops_per_thread;
          ops_done = 0;
          ops_since_barrier = 0;
          phase = Running;
          smt_shared = Hashtbl.find core_use (core_key placement.(i)) > 1;
        })
  in
  let coherence_p = Cache.coherence_probability ~spec ~active_threads:threads in

  (* --- per-op building blocks ------------------------------------- *)

  (* Memory accesses: returns elapsed cycles; charges stall causes. *)
  let memory_phase st ~reads ~writes =
    let elapsed = ref 0.0 in
    let accesses = reads + writes in
    if accesses > 0 then begin
      let fa = float_of_int accesses in
      let shared_acc = fa *. o.Spec.shared_fraction in
      let private_acc = fa -. shared_acc in
      (* Private-cache misses that hit in the LLC. *)
      let llc_hits = sround st.rng (fa *. plan.Cache.p_miss_private_to_llc) in
      if llc_hits > 0 then begin
        let cost = float_of_int llc_hits *. llc_latency in
        Ledger.add st.led Stall.Miss_private cost;
        elapsed := !elapsed +. cost
      end;
      (* DRAM fills for private data: homed on the thread's own socket. *)
      let private_fills = sround st.rng (private_acc *. plan.Cache.p_miss_private_data_memory) in
      for _ = 1 to private_fills do
        let queue, total =
          Memory.request memory ~socket:st.loc.Topology.socket ~chip:st.loc.Topology.chip
            ~now:(st.clock +. !elapsed) ~hops:0
        in
        Ledger.add st.led Stall.Memory_queue queue;
        Ledger.add st.led Stall.Miss_memory (total -. queue);
        elapsed := !elapsed +. total
      done;
      (* DRAM fills for shared data: homed on socket 0 (first touch). *)
      let shared_fills = sround st.rng (shared_acc *. plan.Cache.p_miss_shared_data_memory) in
      for _ = 1 to shared_fills do
        let home = { st.loc with Topology.socket = shared_home_socket; chip = 0 } in
        let hops = Topology.numa_hops st.loc home in
        let queue, total =
          Memory.request memory ~socket:shared_home_socket ~chip:0 ~now:(st.clock +. !elapsed) ~hops
        in
        Ledger.add st.led Stall.Memory_queue queue;
        Ledger.add st.led Stall.Miss_memory (total -. queue);
        elapsed := !elapsed +. total
      done;
      (* Coherence transfers on shared lines. *)
      let transfers = sround st.rng (shared_acc *. coherence_p) in
      if transfers > 0 then begin
        let cost = float_of_int transfers *. line_transfer in
        Ledger.add st.led Stall.Coherence cost;
        elapsed := !elapsed +. cost
      end
    end;
    !elapsed
  in

  (* Compute phase: useful work plus the pipeline stalls tied to it. *)
  let compute_phase st =
    let base = Float.max 1.0 (Rng.gaussian st.rng ~mu:o.Spec.useful_cycles ~sigma:(o.Spec.useful_cycles *. o.Spec.useful_cv)) in
    let useful = if st.smt_shared then base *. smt_slowdown else base in
    Ledger.add_useful st.led useful;
    let dep = useful *. o.Spec.dependency_factor in
    Ledger.add st.led Stall.Dependency dep;
    let fp = useful *. o.Spec.fp_fraction *. 0.35 in
    Ledger.add st.led Stall.Fp_pressure fp;
    let branch = o.Spec.branch_mpki *. useful /. 1000.0 *. branch_penalty_cycles in
    Ledger.add st.led Stall.Branch_recovery branch;
    Ledger.add st.led Stall.Frontend o.Spec.frontend_cycles;
    useful +. dep +. fp +. branch +. o.Spec.frontend_cycles
  in

  (* One operation of thread [st]; advances its clock. *)
  let execute_op st =
    match o.Spec.sync with
    | Spec.Transactional _ ->
        (* The whole op body runs inside a transaction; aborted attempts
           re-execute it.  Hardware counters see aborted work as ordinary
           execution; SwissTM statistics expose it as software stall. *)
        let body = compute_phase st +. memory_phase st ~reads:o.Spec.mem_reads ~writes:o.Spec.mem_writes in
        let stm = Option.get stm in
        let r = Stm.run_transaction stm ~rng:st.rng ~now:st.clock ~duration:body ~threads_active:threads in
        if r.Stm.abort_cycles > 0.0 then begin
          Ledger.add st.led Stall.Stm_abort r.Stm.abort_cycles;
          Ledger.add st.led Stall.Coherence r.Stm.conflict_coherence
        end;
        st.clock <- r.Stm.commit_at +. r.Stm.conflict_coherence
    | Spec.Locked { num_locks; cs_cycles; cs_mem_accesses; _ } ->
        (* Body outside the critical section, then the protected update. *)
        let body = compute_phase st +. memory_phase st ~reads:o.Spec.mem_reads ~writes:o.Spec.mem_writes in
        st.clock <- st.clock +. body;
        let bank = Option.get lock_bank in
        (* Critical-section duration: its compute plus its memory accesses
           at uncontended cost (they mostly hit the shared working set). *)
        let cs_mem = float_of_int cs_mem_accesses *. (llc_latency *. 0.5) in
        let hold = cs_cycles +. cs_mem in
        let index = Rng.int st.rng num_locks in
        let grant = Lock.acquire bank ~index ~now:st.clock ~hold_for:hold in
        if grant.Lock.spin_cycles > 0.0 then Ledger.add st.led Stall.Lock_spin grant.Lock.spin_cycles;
        if grant.Lock.handoff_coherence > 0.0 then
          Ledger.add st.led Stall.Coherence grant.Lock.handoff_coherence;
        if grant.Lock.cold_restart_cycles > 0.0 then
          Ledger.add st.led Stall.Miss_private grant.Lock.cold_restart_cycles;
        Ledger.add_useful st.led cs_cycles;
        Ledger.add st.led Stall.Miss_private cs_mem;
        st.clock <- grant.Lock.released_at
    | Spec.Lock_free { cas_cost_cycles; retry_contention } ->
        let body = compute_phase st +. memory_phase st ~reads:o.Spec.mem_reads ~writes:o.Spec.mem_writes in
        st.clock <- st.clock +. body;
        (* CAS retry loop: failures are hardware-visible coherence traffic. *)
        let p_retry = Float.min 0.9 (retry_contention *. float_of_int (threads - 1)) in
        let attempts = ref 1 in
        while !attempts < 20 && Rng.bool st.rng p_retry do
          incr attempts
        done;
        let failed = float_of_int (!attempts - 1) in
        if failed > 0.0 then Ledger.add st.led Stall.Coherence (failed *. (cas_cost_cycles +. line_transfer));
        Ledger.add_useful st.led cas_cost_cycles;
        st.clock <- st.clock +. (float_of_int !attempts *. cas_cost_cycles) +. (failed *. line_transfer)
    | Spec.No_sync ->
        let body = compute_phase st +. memory_phase st ~reads:o.Spec.mem_reads ~writes:o.Spec.mem_writes in
        st.clock <- st.clock +. body
  in

  (* Barrier release: all parked threads resume together. *)
  let release_barrier () =
    let parked = Array.to_list states |> List.filter (fun st -> match st.phase with Parked _ -> true | _ -> false) in
    let arrival st = match st.phase with Parked t -> t | _ -> assert false in
    let latest = List.fold_left (fun acc st -> Float.max acc (arrival st)) 0.0 parked in
    (* Centralised barrier: the counter line bounces across participants.
       A mutex-based barrier additionally pays a serialised wake-up chain
       (the PARSEC trylock barrier of the paper's Section 4.6). *)
    let per_thread_cost =
      match o.Spec.barrier_kind with
      | Spec.Spinlock -> line_transfer
      | Spec.Mutex -> line_transfer +. (0.5 *. Lock.mutex_wake_penalty)
    in
    let overhead = barrier_base_cycles +. (per_thread_cost *. float_of_int (List.length parked)) in
    let release = latest +. overhead in
    List.iter
      (fun st ->
        let wait = release -. arrival st in
        Ledger.add st.led Stall.Barrier_wait wait;
        Ledger.add st.led Stall.Coherence (line_transfer *. 0.5);
        st.clock <- release;
        st.phase <- Running)
      parked
  in

  (* --- main loop ---------------------------------------------------- *)
  let finished = ref 0 in
  while !finished < threads do
    (* Advance the lagging runnable thread. *)
    let next = ref None in
    Array.iter
      (fun st ->
        match st.phase with
        | Running -> (
            match !next with
            | Some best when best.clock <= st.clock -> ()
            | _ -> next := Some st)
        | Parked _ | Done -> ())
      states;
    match !next with
    | None ->
        (* Everyone alive is parked at the barrier. *)
        release_barrier ()
    | Some st ->
        execute_op st;
        st.ops_left <- st.ops_left - 1;
        st.ops_done <- st.ops_done + 1;
        st.ops_since_barrier <- st.ops_since_barrier + 1;
        if st.ops_left = 0 then begin
          st.phase <- Done;
          incr finished
        end
        else begin
          match barrier_interval with
          | Some k when st.ops_since_barrier >= k ->
              st.ops_since_barrier <- 0;
              st.phase <- Parked st.clock;
              (* If every running thread is now parked the next loop
                 iteration releases them. *)
              let runnable = Array.exists (fun s -> s.phase = Running) states in
              if not runnable then release_barrier ()
          | _ -> ()
        end
  done;
  let per_thread =
    Array.map
      (fun st ->
        { ledger = st.led; finish_cycles = st.clock; ops_executed = st.ops_done; location = st.loc })
      states
  in
  let merged = Ledger.merge (Array.to_list (Array.map (fun st -> st.led) states)) in
  let makespan = Array.fold_left (fun acc st -> Float.max acc st.clock) 0.0 states in
  {
    machine;
    spec_name = spec.Spec.name;
    threads;
    cycles = makespan;
    time_seconds = makespan /. (machine.Topology.frequency_ghz *. 1e9);
    ledger = merged;
    per_thread;
    ops_executed = Array.fold_left (fun acc st -> acc + st.ops_done) 0 states;
    footprint_lines = Spec.total_footprint_lines spec ~threads;
    lock_contended = (match lock_bank with Some b -> Lock.contended_acquisitions b | None -> 0);
  }

let stalls_per_core result =
  let hw = Ledger.total_hardware_backend result.ledger in
  let sw =
    List.fold_left
      (fun acc c -> if Stall.is_software c then acc +. Ledger.get result.ledger c else acc)
      0.0 Stall.all
  in
  (hw +. sw) /. float_of_int result.threads
