type t = {
  kind : Spec.lock_kind;
  free_at : float array;
  line_transfer_cycles : float;
  mutable contended : int;
}

type grant = {
  acquired_at : float;
  released_at : float;
  spin_cycles : float;
  handoff_coherence : float;
  cold_restart_cycles : float;
}

let mutex_spin_threshold = 600.0

let mutex_wake_penalty = 1500.0

let create kind ~count ~line_transfer_cycles =
  if count <= 0 then invalid_arg "Lock.create: need at least one lock";
  { kind; free_at = Array.make count 0.0; line_transfer_cycles; contended = 0 }

let acquire t ~index ~now ~hold_for =
  if hold_for < 0.0 then invalid_arg "Lock.acquire: negative hold time";
  let i = index mod Array.length t.free_at in
  let i = if i < 0 then i + Array.length t.free_at else i in
  let free = t.free_at.(i) in
  if free <= now then begin
    (* Uncontended: immediate grant, no handoff transfer. *)
    let released_at = now +. hold_for in
    t.free_at.(i) <- released_at;
    { acquired_at = now; released_at; spin_cycles = 0.0; handoff_coherence = 0.0; cold_restart_cycles = 0.0 }
  end
  else begin
    t.contended <- t.contended + 1;
    let wait = free -. now in
    (* Both kinds report the full wait as sync cycles: a pthread wrapper
       measures elapsed TSC inside lock(), blocked or spinning alike.  The
       mutex additionally pays the wake-up penalty on long waits, and
       blocking deschedules the thread: waking re-fetches the lock word,
       the protected data and whatever the scheduler evicted — roughly
       half the wake-up penalty shows up in hardware counters as backend
       (cache-refill) stalls. *)
    let spin, extra_delay, cold_restart =
      match t.kind with
      | Spec.Spinlock -> (wait, 0.0, 0.0)
      | Spec.Mutex ->
          if wait <= mutex_spin_threshold then (wait, 0.0, 0.0)
          else (wait, mutex_wake_penalty, 0.5 *. mutex_wake_penalty)
    in
    let acquired_at = free +. extra_delay +. t.line_transfer_cycles in
    let released_at = acquired_at +. hold_for in
    t.free_at.(i) <- released_at;
    {
      acquired_at;
      released_at;
      spin_cycles = spin;
      handoff_coherence = t.line_transfer_cycles;
      cold_restart_cycles = cold_restart;
    }
  end

let reset t =
  Array.fill t.free_at 0 (Array.length t.free_at) 0.0;
  t.contended <- 0

let contended_acquisitions t = t.contended
