(** Analytic cache-hierarchy model.

    Individual lines are not tracked; instead hit probabilities follow from
    working-set size versus capacity, and every LLC miss becomes a real
    request to the {!Memory} controllers — so while hit ratios are
    analytic, bandwidth saturation and NUMA queueing remain emergent.

    Placement model: private data is homed on the owning thread's socket;
    shared data is homed on socket 0 (first touch by the initialising
    thread), which concentrates shared-miss traffic exactly the way a
    non-NUMA-aware in-memory application does. *)

type plan = {
  p_miss_private_to_llc : float;  (** Private-cache miss, LLC hit. *)
  p_miss_private_data_memory : float;  (** Miss to DRAM for private data. *)
  p_miss_shared_data_memory : float;  (** Miss to DRAM for shared data. *)
}

val plan :
  Estima_machine.Topology.t ->
  spec:Spec.t ->
  threads:int ->
  sockets_used:int ->
  plan
(** Hit/miss probabilities for one run configuration.  Working sets follow
    from the spec's footprints; capacity from the machine's timing record;
    LLC pressure aggregates every thread mapped to a socket. *)

val coherence_probability : spec:Spec.t -> active_threads:int -> float
(** Probability that a shared-data access pays a coherence transfer
    (invalidation or dirty cache-to-cache hit), increasing with the number
    of other threads writing shared lines.  In [0, 0.95]. *)
