(** Lock queueing model.

    A lock serialises critical sections: acquisitions are granted in FIFO
    order, so a thread arriving at time [t] when the lock frees at [f > t]
    waits [f - t] cycles.  How those waiting cycles are *spent* depends on
    the lock kind:

    - {!Spec.Spinlock}: the thread burns every waiting cycle spinning
      (all waiting is software stall).
    - {!Spec.Mutex}: pthread-style adaptive lock — spin briefly, then
      block; blocked cycles are not executed (they still elapse), and
      waking costs a context-switch penalty that lengthens the wait. *)

type t

type grant = {
  acquired_at : float;  (** When the critical section begins. *)
  released_at : float;  (** When the lock frees again. *)
  spin_cycles : float;
      (** Wall-clock cycles spent inside the acquire (spinning or blocked) —
          what a pthread wrapper's TSC instrumentation reports. *)
  handoff_coherence : float;
      (** Cycles of cache-line transfer for the lock word on a contended
          handoff (hardware coherence stall). *)
  cold_restart_cycles : float;
      (** Backend stall cycles visible after a blocked mutex waiter wakes:
          the descheduled thread's cache state was evicted and must be
          re-fetched.  Zero for spinlocks and un-blocked waits. *)
}

val create : Spec.lock_kind -> count:int -> line_transfer_cycles:float -> t
(** A striped set of [count] locks.  [line_transfer_cycles] is the cost of
    migrating the lock word between caches on contended acquire. *)

val acquire : t -> index:int -> now:float -> hold_for:float -> grant
(** [acquire t ~index ~now ~hold_for] requests lock [index mod count] at
    time [now], holding it for [hold_for] cycles once granted. *)

val reset : t -> unit

val contended_acquisitions : t -> int
(** Acquisitions that had to wait, since creation/reset. *)

val mutex_spin_threshold : float
(** Cycles a Mutex spins before blocking (adaptive-mutex model). *)

val mutex_wake_penalty : float
(** Extra cycles between lock release and a blocked waiter resuming. *)
