(** Bandwidth-limited memory controllers.

    One controller per chip (multi-chip packages like the Opteron 6172
    expose a controller per die), each with a capacity of
    [ports / service_cycles] line fills per cycle.  Queueing delay is
    computed from the controller's measured arrival rate (EMA over
    inter-arrival gaps) through an M/M/c-style waiting formula — a
    skew-tolerant model, since simulated threads advance an operation at a
    time and their clocks are not perfectly aligned.  Saturation is
    self-stabilising: overload lengthens fills, which slows the offered
    load back towards capacity while leaving large queueing stalls in the
    ledger — the emergent bandwidth bottleneck that dominates saturating
    workloads at high core counts. *)

type t

val create : Estima_machine.Topology.t -> t
(** One controller per (socket, chip) of the machine. *)

val request : t -> socket:int -> chip:int -> now:float -> hops:int -> float * float
(** [request t ~socket ~chip ~now ~hops] issues a line fill to the given
    chip's controller at time [now] from a requester [hops] NUMA hops
    away.  Returns [(queue_delay, total_latency)]: the cycles charged to
    controller queueing, and the full cycles until the fill completes
    (queueing + DRAM latency including the NUMA penalty).  Raises
    [Invalid_argument] for an unknown controller. *)

val reset : t -> unit

val total_fills : t -> socket:int -> chip:int -> int
(** Fills serviced since creation/reset, for bandwidth accounting. *)
