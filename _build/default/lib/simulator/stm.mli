(** Software transactional memory runtime model (SwissTM-like).

    A transaction reads [reads] and writes [writes] keys out of a
    [key_space].  It aborts when another thread commits a write to one of
    its keys during its window.  The conflict rate is computed from the
    actual committed-write throughput of the other threads, so it rises
    with the core count and with any lengthening of the transaction window
    (e.g. from memory stalls) — the feedback that makes STM benchmarks
    collapse at scale.

    Aborted attempts burn their full duration plus a backoff penalty; those
    cycles are what SwissTM's statistics report and what ESTIMA consumes as
    software stalls (Section 3.2). *)

type t

type attempt_result = {
  commit_at : float;  (** When the transaction finally commits. *)
  aborted_attempts : int;
  abort_cycles : float;  (** Cycles burnt in aborted attempts + backoff. *)
  conflict_coherence : float;  (** Extra line transfers caused by retries. *)
}

val create :
  reads:int ->
  writes:int ->
  key_space:int ->
  abort_penalty_cycles:float ->
  line_transfer_cycles:float ->
  t

val run_transaction :
  t -> rng:Estima_numerics.Rng.t -> now:float -> duration:float -> threads_active:int -> attempt_result
(** Execute one transaction of [duration] cycles starting at [now] with
    [threads_active] concurrent threads.  Retries are capped; the cap
    models contention management kicking in. *)

val record_commit : t -> writes_at:float -> unit
(** Tell the runtime a commit happened, feeding the global write-rate
    estimate used for conflict probabilities. *)

val observed_write_rate : t -> at:float -> float
(** Committed writes per cycle across all threads, estimated over a recent
    window. *)
