type t = { stalls : float array; mutable useful_cycles : float }

let create () = { stalls = Array.make Stall.count 0.0; useful_cycles = 0.0 }

let add t cause amount =
  if amount < 0.0 then invalid_arg "Ledger.add: negative amount";
  let i = Stall.index cause in
  t.stalls.(i) <- t.stalls.(i) +. amount

let get t cause = t.stalls.(Stall.index cause)

let add_useful t amount =
  if amount < 0.0 then invalid_arg "Ledger.add_useful: negative amount";
  t.useful_cycles <- t.useful_cycles +. amount

let useful t = t.useful_cycles

let merge ledgers =
  let out = create () in
  List.iter
    (fun l ->
      Array.iteri (fun i v -> out.stalls.(i) <- out.stalls.(i) +. v) l.stalls;
      out.useful_cycles <- out.useful_cycles +. l.useful_cycles)
    ledgers;
  out

let total_stalls t = Array.fold_left ( +. ) 0.0 t.stalls

let total_hardware_backend t =
  List.fold_left
    (fun acc c -> if Stall.is_hardware_backend c then acc +. get t c else acc)
    0.0 Stall.all

let to_assoc t = List.map (fun c -> (c, get t c)) Stall.all
