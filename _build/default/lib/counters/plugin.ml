open Estima_sim

type combine = Sum | Average | Min | Max

type t = { name : string; causes : Stall.cause list; combine : combine }

let pthread_wrapper =
  { name = "pthread-sync"; causes = [ Stall.Lock_spin; Stall.Barrier_wait ]; combine = Sum }

let swisstm = { name = "stm-abort"; causes = [ Stall.Stm_abort ]; combine = Sum }

let validate t =
  if t.name = "" then Error "plugin needs a name"
  else if t.causes = [] then Error (t.name ^ ": no causes")
  else if List.exists (fun c -> not (Stall.is_software c)) t.causes then
    Error (t.name ^ ": hardware causes belong to performance counters, not plugins")
  else Ok ()

let read t (result : Engine.result) =
  (match validate t with Ok () -> () | Error e -> invalid_arg ("Plugin.read: " ^ e));
  let per_thread =
    Array.map
      (fun (ts : Engine.thread_stats) ->
        List.fold_left (fun acc c -> acc +. Ledger.get ts.Engine.ledger c) 0.0 t.causes)
      result.Engine.per_thread
  in
  let n = Array.length per_thread in
  if n = 0 then 0.0
  else
    match t.combine with
    | Sum -> Array.fold_left ( +. ) 0.0 per_thread
    | Average -> Array.fold_left ( +. ) 0.0 per_thread /. float_of_int n
    | Min -> Array.fold_left Float.min per_thread.(0) per_thread
    | Max -> Array.fold_left Float.max per_thread.(0) per_thread
