open Estima_sim

type t = {
  threads : int;
  time_seconds : float;
  cycles : float;
  counters : (string * float) list;
  software : (string * float) list;
  footprint_lines : int;
  useful_cycles : float;
}

(* Frontend event codes, used to split categories without consulting the
   vendor again. *)
let frontend_codes = [ Event.amd_frontend.Event.code; Event.intel_frontend.Event.code ]

let is_frontend_code code = List.mem code frontend_codes

let of_run ~plugins ~vendor (result : Engine.result) =
  {
    threads = result.Engine.threads;
    time_seconds = result.Engine.time_seconds;
    cycles = result.Engine.cycles;
    counters = Event.attribute_ledger vendor result.Engine.ledger;
    software = List.map (fun p -> (p.Plugin.name, Plugin.read p result)) plugins;
    footprint_lines = result.Engine.footprint_lines;
    useful_cycles = Ledger.useful result.Engine.ledger;
  }

let counter t name =
  match List.assoc_opt name t.counters with
  | Some v -> v
  | None -> (
      match List.assoc_opt name t.software with Some v -> v | None -> raise Not_found)

let categories t ~include_frontend =
  let hw =
    List.filter_map
      (fun (code, _) -> if is_frontend_code code && not include_frontend then None else Some code)
      t.counters
  in
  hw @ List.map fst t.software

let total_stalls t ~include_frontend ~include_software =
  let hw =
    List.fold_left
      (fun acc (code, v) -> if is_frontend_code code && not include_frontend then acc else acc +. v)
      0.0 t.counters
  in
  if include_software then List.fold_left (fun acc (_, v) -> acc +. v) hw t.software else hw
