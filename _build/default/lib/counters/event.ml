open Estima_machine
open Estima_sim

type t = { code : string; description : string; vendor : Topology.vendor; frontend : bool }

let amd code description = { code; description; vendor = Topology.Amd; frontend = false }

let intel code description = { code; description; vendor = Topology.Intel; frontend = false }

let amd_backend =
  [
    amd "0D2h" "Dispatch Stall for Branch Abort to Retire";
    amd "0D5h" "Dispatch Stall for Reorder Buffer Full";
    amd "0D6h" "Dispatch Stall for Reservation Station Full";
    amd "0D7h" "Dispatch Stall for FPU Full";
    amd "0D8h" "Dispatch Stall for LS Full";
  ]

let intel_backend =
  [
    intel "0487h" "Stalled cycles due to IQ full";
    intel "01A2h" "Cycles allocation stalled due to resource-related reasons";
    intel "04A2h" "No eligible RS entry available";
    intel "08A2h" "No store buffers available";
    intel "10A2h" "Re-order buffer full";
  ]

let amd_frontend =
  { code = "0D0h"; description = "Decoder Empty"; vendor = Topology.Amd; frontend = true }

let intel_frontend =
  { code = "0280h"; description = "ICACHE.IFETCH_STALL"; vendor = Topology.Intel; frontend = true }

let backend_events = function Topology.Amd -> amd_backend | Topology.Intel -> intel_backend

let all_events vendor =
  backend_events vendor @ [ (match vendor with Topology.Amd -> amd_frontend | Topology.Intel -> intel_frontend) ]

let find vendor code = List.find_opt (fun e -> String.equal e.code code) (all_events vendor)

(* Attribution matrices.  Rows (causes) sum to 1.0 so no cycle is counted
   by two events — the paper discards significantly-overlapping events. *)
let attribution vendor cause =
  match (vendor, cause) with
  | Topology.Amd, Stall.Miss_private -> [ ("0D8h", 1.0) ]
  | Topology.Amd, Stall.Miss_memory -> [ ("0D8h", 0.7); ("0D5h", 0.3) ]
  | Topology.Amd, Stall.Memory_queue -> [ ("0D8h", 0.7); ("0D5h", 0.3) ]
  | Topology.Amd, Stall.Coherence -> [ ("0D8h", 0.8); ("0D5h", 0.2) ]
  | Topology.Amd, Stall.Dependency -> [ ("0D6h", 0.9); ("0D5h", 0.1) ]
  | Topology.Amd, Stall.Fp_pressure -> [ ("0D7h", 1.0) ]
  | Topology.Amd, Stall.Branch_recovery -> [ ("0D2h", 1.0) ]
  | Topology.Amd, Stall.Frontend -> [ ("0D0h", 1.0) ]
  | Topology.Intel, Stall.Miss_private -> [ ("10A2h", 0.5); ("01A2h", 0.5) ]
  | Topology.Intel, Stall.Miss_memory -> [ ("10A2h", 0.7); ("01A2h", 0.3) ]
  | Topology.Intel, Stall.Memory_queue -> [ ("10A2h", 0.6); ("01A2h", 0.4) ]
  | Topology.Intel, Stall.Coherence -> [ ("08A2h", 0.7); ("01A2h", 0.3) ]
  | Topology.Intel, Stall.Dependency -> [ ("04A2h", 0.9); ("0487h", 0.1) ]
  | Topology.Intel, Stall.Fp_pressure -> [ ("04A2h", 1.0) ]
  | Topology.Intel, Stall.Branch_recovery -> [ ("0487h", 1.0) ]
  | Topology.Intel, Stall.Frontend -> [ ("0280h", 1.0) ]
  | _, (Stall.Lock_spin | Stall.Barrier_wait | Stall.Stm_abort) -> []

let attribute_ledger vendor ledger =
  let events = all_events vendor in
  let totals = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace totals e.code 0.0) events;
  List.iter
    (fun cause ->
      let cycles = Ledger.get ledger cause in
      if cycles > 0.0 then
        List.iter
          (fun (code, weight) ->
            Hashtbl.replace totals code (Hashtbl.find totals code +. (weight *. cycles)))
          (attribution vendor cause))
    Stall.all;
  List.map (fun e -> (e.code, Hashtbl.find totals e.code)) events
