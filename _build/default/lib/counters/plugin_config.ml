type entry = {
  name : string;
  source : string;
  expression : string;
  combine : Plugin.combine;
}

let combine_of_string s =
  match String.lowercase_ascii s with
  | "sum" -> Ok Plugin.Sum
  | "average" | "avg" -> Ok Plugin.Average
  | "min" -> Ok Plugin.Min
  | "max" -> Ok Plugin.Max
  | other -> Error (Printf.sprintf "unknown combine function %S (sum/average/min/max)" other)

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let split_field line =
  let line = String.trim (strip_comment line) in
  if line = "" then None
  else
    match String.index_opt line ' ' with
    | None -> Some (line, "")
    | Some i ->
        Some (String.sub line 0 i, String.trim (String.sub line i (String.length line - i)))

type partial = {
  p_name : string option;
  p_source : string option;
  p_expression : string option;
  p_combine : Plugin.combine option;
}

let empty_partial = { p_name = None; p_source = None; p_expression = None; p_combine = None }

let is_empty_partial p =
  p.p_name = None && p.p_source = None && p.p_expression = None && p.p_combine = None

let finish lineno p =
  match (p.p_name, p.p_source, p.p_expression) with
  | Some name, Some source, Some expression ->
      Ok { name; source; expression; combine = Option.value ~default:Plugin.Sum p.p_combine }
  | None, _, _ -> Error (Printf.sprintf "line %d: plugin stanza missing 'name'" lineno)
  | _, None, _ -> Error (Printf.sprintf "line %d: plugin stanza missing 'source'" lineno)
  | _, _, None -> Error (Printf.sprintf "line %d: plugin stanza missing 'expression'" lineno)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno partial acc = function
    | [] ->
        if is_empty_partial partial then Ok (List.rev acc)
        else Result.map (fun e -> List.rev (e :: acc)) (finish lineno partial)
    | line :: rest -> (
        let lineno = lineno + 1 in
        match split_field line with
        | None ->
            (* Blank line: stanza boundary. *)
            if is_empty_partial partial then go lineno partial acc rest
            else (
              match finish lineno partial with
              | Error _ as e -> e
              | Ok entry -> go lineno empty_partial (entry :: acc) rest)
        | Some (key, value) -> (
            match key with
            | "name" -> go lineno { partial with p_name = Some value } acc rest
            | "source" -> go lineno { partial with p_source = Some value } acc rest
            | "expression" -> go lineno { partial with p_expression = Some value } acc rest
            | "combine" -> (
                match combine_of_string value with
                | Ok c -> go lineno { partial with p_combine = Some c } acc rest
                | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
            | other -> Error (Printf.sprintf "line %d: unknown field %S" lineno other)))
  in
  go 0 empty_partial [] lines

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

let apply entry ~report =
  let values = Report_file.scan ~expression:entry.expression report in
  match values with
  | [] -> 0.0
  | first :: _ -> (
      match entry.combine with
      | Plugin.Sum -> List.fold_left ( +. ) 0.0 values
      | Plugin.Average -> List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)
      | Plugin.Min -> List.fold_left Float.min first values
      | Plugin.Max -> List.fold_left Float.max first values)

let read_from_run entry result = apply entry ~report:(Report_file.render result)
