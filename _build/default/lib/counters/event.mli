(** Hardware performance-counter events.

    The backend-stall event sets of the paper: Table 2 for AMD Family 10h
    (Opteron) and Table 3 for recent Intel processors, plus one frontend
    event per vendor for the Section 5.2 ablation.  The simulator's
    physical stall causes are attributed onto these events by a
    per-vendor weight matrix whose rows sum to 1 — each stalled cycle is
    observed by exactly one (fractional combination of) counter(s), the
    way non-overlapping fine-grain events behave. *)

type t = {
  code : string;  (** Vendor event code, e.g. "0D8h" or "01A2h". *)
  description : string;
  vendor : Estima_machine.Topology.vendor;
  frontend : bool;
}

val amd_backend : t list
(** Table 2: 0D2h, 0D5h, 0D6h, 0D7h, 0D8h. *)

val intel_backend : t list
(** Table 3: 0487h, 01A2h, 04A2h, 08A2h, 10A2h. *)

val amd_frontend : t
val intel_frontend : t

val backend_events : Estima_machine.Topology.vendor -> t list

val all_events : Estima_machine.Topology.vendor -> t list
(** Backend plus the frontend event. *)

val find : Estima_machine.Topology.vendor -> string -> t option

val attribution : Estima_machine.Topology.vendor -> Estima_sim.Stall.cause -> (string * float) list
(** [attribution vendor cause] gives the event codes observing [cause] and
    the fraction of its cycles each sees.  Weights sum to 1 for every
    hardware cause; software causes return []. *)

val attribute_ledger :
  Estima_machine.Topology.vendor -> Estima_sim.Ledger.t -> (string * float) list
(** Full counter readout for one run: every event of the vendor (frontend
    included) with its attributed cycle count, in [all_events] order. *)
