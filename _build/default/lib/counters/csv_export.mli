(** CSV export of measurement series, for plotting the paper-style figures
    with external tools (gnuplot, pandas, ...). *)

val series_to_csv : Series.t -> string
(** One row per measured core count; columns: [threads], [time_seconds],
    every hardware counter, every software plugin, [footprint_lines].
    RFC-4180-style quoting is unnecessary (all fields are numeric or
    simple identifiers). *)

val prediction_to_csv :
  grid:float array -> columns:(string * float array) list -> string
(** Generic numeric table: [cores] followed by the named columns.  Raises
    [Invalid_argument] on length mismatches. *)

val write : path:string -> string -> unit
