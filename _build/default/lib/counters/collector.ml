open Estima_sim

type options = {
  seed : int;
  plugins : Plugin.t list;
  config_plugins : Plugin_config.entry list;
  repetitions : int;
}

let default_options = { seed = 42; plugins = []; config_plugins = []; repetitions = 1 }

let average_samples samples =
  match samples with
  | [] -> invalid_arg "Collector.average_samples: empty"
  | first :: _ ->
      let n = float_of_int (List.length samples) in
      let avg f = List.fold_left (fun acc s -> acc +. f s) 0.0 samples /. n in
      let avg_assoc get =
        List.map
          (fun (name, _) -> (name, avg (fun s -> List.assoc name (get s))))
          (get first)
      in
      {
        first with
        Sample.time_seconds = avg (fun s -> s.Sample.time_seconds);
        cycles = avg (fun s -> s.Sample.cycles);
        counters = avg_assoc (fun s -> s.Sample.counters);
        software = avg_assoc (fun s -> s.Sample.software);
        useful_cycles = avg (fun s -> s.Sample.useful_cycles);
      }

let collect ?(options = default_options) ~machine ~spec ~thread_counts () =
  if thread_counts = [] then invalid_arg "Collector.collect: no thread counts";
  if options.repetitions <= 0 then invalid_arg "Collector.collect: repetitions must be positive";
  let vendor = machine.Estima_machine.Topology.vendor in
  let samples =
    List.map
      (fun threads ->
        let runs =
          List.init options.repetitions (fun rep ->
              let seed = options.seed + (1000 * rep) in
              let result = Engine.run ~seed ~machine ~spec ~threads () in
              let sample = Sample.of_run ~plugins:options.plugins ~vendor result in
              (* Configuration-file plugins read the run through its
                 rendered runtime report, exactly the loop the paper's
                 tool performs on the statistics files. *)
              match options.config_plugins with
              | [] -> sample
              | entries ->
                  let report = Report_file.render result in
                  let extra =
                    List.map
                      (fun (e : Plugin_config.entry) ->
                        (e.Plugin_config.name, Plugin_config.apply e ~report))
                      entries
                  in
                  { sample with Sample.software = sample.Sample.software @ extra })
        in
        average_samples runs)
      thread_counts
  in
  Series.make ~machine ~spec_name:spec.Spec.name samples

let default_thread_counts ~max =
  if max <= 0 then invalid_arg "Collector.default_thread_counts: non-positive max";
  List.init max (fun i -> i + 1)
