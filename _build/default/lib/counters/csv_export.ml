let series_to_csv (series : Series.t) =
  let buffer = Buffer.create 1024 in
  let first = series.Series.samples.(0) in
  let counter_names = List.map fst first.Sample.counters in
  let software_names = List.map fst first.Sample.software in
  Buffer.add_string buffer
    (String.concat ","
       ([ "threads"; "time_seconds" ] @ counter_names @ software_names @ [ "footprint_lines" ]));
  Buffer.add_char buffer '\n';
  Array.iter
    (fun (s : Sample.t) ->
      let cells =
        [ string_of_int s.Sample.threads; Printf.sprintf "%.9g" s.Sample.time_seconds ]
        @ List.map (fun n -> Printf.sprintf "%.9g" (Sample.counter s n)) counter_names
        @ List.map (fun n -> Printf.sprintf "%.9g" (Sample.counter s n)) software_names
        @ [ string_of_int s.Sample.footprint_lines ]
      in
      Buffer.add_string buffer (String.concat "," cells);
      Buffer.add_char buffer '\n')
    series.Series.samples;
  Buffer.contents buffer

let prediction_to_csv ~grid ~columns =
  List.iter
    (fun (name, values) ->
      if Array.length values <> Array.length grid then
        invalid_arg (Printf.sprintf "Csv_export.prediction_to_csv: column %s length mismatch" name))
    columns;
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (String.concat "," ("cores" :: List.map fst columns));
  Buffer.add_char buffer '\n';
  Array.iteri
    (fun i n ->
      let cells =
        Printf.sprintf "%.0f" n :: List.map (fun (_, v) -> Printf.sprintf "%.9g" v.(i)) columns
      in
      Buffer.add_string buffer (String.concat "," cells);
      Buffer.add_char buffer '\n')
    grid;
  Buffer.contents buffer

let write ~path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)
