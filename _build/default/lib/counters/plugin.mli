(** Software stalled-cycle plugins (paper Section 4.1).

    ESTIMA accepts plugin configurations naming a source of reported
    software stall cycles and a combining function applied to the values
    collected from each thread.  Here the "report file" is the simulator's
    per-thread ledger; two ready-made plugins mirror the paper's pthread
    wrapper and the SwissTM statistics. *)

type combine = Sum | Average | Min | Max

type t = {
  name : string;  (** Category label used by the predictor. *)
  causes : Estima_sim.Stall.cause list;  (** Ledger causes this plugin reads. *)
  combine : combine;  (** Applied across per-thread values. *)
}

val pthread_wrapper : t
(** Lock spinning + barrier waiting, summed across threads — the thin
    wrapper around the pthread library of Sections 4.6 and 5.3. *)

val swisstm : t
(** Aborted-transaction cycles, summed across threads — SwissTM with
    detailed statistics enabled. *)

val validate : t -> (unit, string) result
(** Rejects plugins that name hardware causes (those belong to counters). *)

val read : t -> Estima_sim.Engine.result -> float
(** Apply the plugin to one run: gather its causes from each thread ledger
    and combine.  Raises [Invalid_argument] if the plugin is invalid. *)
