type t = {
  machine : Estima_machine.Topology.t;
  spec_name : string;
  samples : Sample.t array;
}

let make ~machine ~spec_name samples =
  if samples = [] then invalid_arg "Series.make: no samples";
  let arr = Array.of_list samples in
  Array.sort (fun a b -> compare a.Sample.threads b.Sample.threads) arr;
  Array.iteri
    (fun i s ->
      if s.Sample.threads <= 0 then invalid_arg "Series.make: non-positive thread count";
      if i > 0 && arr.(i - 1).Sample.threads = s.Sample.threads then
        invalid_arg "Series.make: duplicate thread count")
    arr;
  { machine; spec_name; samples = arr }

let threads t = Array.map (fun s -> float_of_int s.Sample.threads) t.samples

let times t = Array.map (fun s -> s.Sample.time_seconds) t.samples

let category_values t name =
  Array.map
    (fun s ->
      match Sample.counter s name with v -> v | exception Not_found -> raise Not_found)
    t.samples

let categories t ~include_frontend = Sample.categories t.samples.(0) ~include_frontend

let stalls_per_core t ~include_frontend ~include_software =
  Array.map
    (fun s ->
      Sample.total_stalls s ~include_frontend ~include_software /. float_of_int s.Sample.threads)
    t.samples

let max_threads t = t.samples.(Array.length t.samples - 1).Sample.threads

let truncate t ~max_threads =
  let kept = Array.to_list t.samples |> List.filter (fun s -> s.Sample.threads <= max_threads) in
  if kept = [] then invalid_arg "Series.truncate: no samples left";
  { t with samples = Array.of_list kept }
