(** A measurement series: samples over increasing thread counts on one
    machine, the input to ESTIMA's regression step. *)

type t = {
  machine : Estima_machine.Topology.t;
  spec_name : string;
  samples : Sample.t array;  (** Sorted by thread count, strictly increasing. *)
}

val make : machine:Estima_machine.Topology.t -> spec_name:string -> Sample.t list -> t
(** Sorts and validates (distinct positive thread counts, non-empty).
    Raises [Invalid_argument] otherwise. *)

val threads : t -> float array

val times : t -> float array

val category_values : t -> string -> float array
(** Values of one stall category across the series.  Raises [Not_found]
    when any sample lacks the category. *)

val categories : t -> include_frontend:bool -> string list
(** Categories present in the first sample. *)

val stalls_per_core : t -> include_frontend:bool -> include_software:bool -> float array
(** Total stalls divided by thread count, per sample. *)

val max_threads : t -> int

val truncate : t -> max_threads:int -> t
(** Keep only samples with [threads <= max_threads] — e.g. restrict a
    full-machine sweep to the "measurements machine" window.  Raises
    [Invalid_argument] when nothing survives. *)
