lib/counters/csv_export.mli: Series
