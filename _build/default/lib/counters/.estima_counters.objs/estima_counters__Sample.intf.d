lib/counters/sample.mli: Estima_machine Estima_sim Plugin
