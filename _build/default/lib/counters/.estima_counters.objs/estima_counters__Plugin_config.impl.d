lib/counters/plugin_config.ml: Float In_channel List Option Plugin Printf Report_file Result String
