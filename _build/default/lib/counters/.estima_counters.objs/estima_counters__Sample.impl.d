lib/counters/sample.ml: Engine Estima_sim Event Ledger List Plugin
