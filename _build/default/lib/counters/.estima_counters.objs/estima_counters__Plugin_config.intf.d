lib/counters/plugin_config.mli: Estima_sim Plugin
