lib/counters/series.mli: Estima_machine Sample
