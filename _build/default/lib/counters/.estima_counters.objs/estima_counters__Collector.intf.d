lib/counters/collector.mli: Estima_machine Estima_sim Plugin Plugin_config Series
