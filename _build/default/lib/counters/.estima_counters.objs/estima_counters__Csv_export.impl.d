lib/counters/csv_export.ml: Array Buffer Fun List Printf Sample Series String
