lib/counters/report_file.ml: Array Buffer Engine Estima_sim Fun Ledger List Printf Stall String
