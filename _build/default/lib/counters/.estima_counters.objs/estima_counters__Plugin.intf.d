lib/counters/plugin.mli: Estima_sim
