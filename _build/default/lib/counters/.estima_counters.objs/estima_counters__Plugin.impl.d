lib/counters/plugin.ml: Array Engine Estima_sim Float Ledger List Stall
