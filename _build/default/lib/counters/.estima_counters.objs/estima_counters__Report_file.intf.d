lib/counters/report_file.mli: Estima_sim
