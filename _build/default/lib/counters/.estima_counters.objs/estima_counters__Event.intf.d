lib/counters/event.mli: Estima_machine Estima_sim
