lib/counters/collector.ml: Engine Estima_machine Estima_sim List Plugin Plugin_config Report_file Sample Series Spec
