lib/counters/series.ml: Array Estima_machine List Sample
