lib/counters/event.ml: Estima_machine Estima_sim Hashtbl Ledger List Stall String Topology
