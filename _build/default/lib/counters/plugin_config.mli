(** Plugin configuration files (paper Section 4.1).

    "estima takes a configuration file that includes the path to the file
    the stalls are reported in (including special files like stdout or
    stderr), as well as the expression that is used to report the cycles.
    estima can apply a function to the collected values (e.g., min, max,
    sum, average)."

    The format is line-oriented, one field per line, [#] comments, one or
    more plugin stanzas separated by blank lines:

    {v
    # aborted transactions from the SwissTM statistics
    name       stm-abort
    source     stm.stats            # or: stdout / stderr
    expression stm-abort-cycles %d
    combine    sum
    v}

    Parsed plugins are resolved against {!Report_file.scan}: the expression
    extracts one value per thread from the runtime's report, and the
    combine function folds them into the category value. *)

type entry = {
  name : string;
  source : string;  (** Report file path, or "stdout"/"stderr". *)
  expression : string;  (** A single-[%d] pattern for {!Report_file.scan}. *)
  combine : Plugin.combine;
}

val parse : string -> (entry list, string) result
(** Parse configuration text.  Errors name the offending line. *)

val load : path:string -> (entry list, string) result

val combine_of_string : string -> (Plugin.combine, string) result
(** "sum" | "average" | "min" | "max" (case-insensitive). *)

val apply : entry -> report:string -> float
(** Extract the entry's values from a report and combine them.  Returns 0
    when nothing matches (a silent runtime reported no stalls). *)

val read_from_run : entry -> Estima_sim.Engine.result -> float
(** The full loop on the simulated substrate: render the run's report
    (as the instrumented runtime would write it to [entry.source]) and
    apply the entry. *)
