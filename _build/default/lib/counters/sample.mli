(** One measurement: a workload executed at one thread count.

    The paper's step (A): counters, execution time and memory footprint
    collected from a single run. *)

type t = {
  threads : int;
  time_seconds : float;
  cycles : float;  (** Makespan in cycles (frequency-neutral view). *)
  counters : (string * float) list;  (** Event code -> attributed cycles. *)
  software : (string * float) list;  (** Plugin name -> reported cycles. *)
  footprint_lines : int;
  useful_cycles : float;
}

val of_run :
  plugins:Plugin.t list -> vendor:Estima_machine.Topology.vendor -> Estima_sim.Engine.result -> t

val counter : t -> string -> float
(** Raises [Not_found] for an unknown category (counter or plugin). *)

val categories : t -> include_frontend:bool -> string list
(** Hardware backend event codes (plus the frontend event when asked)
    followed by software plugin names — the stall categories ESTIMA
    extrapolates. *)

val total_stalls : t -> include_frontend:bool -> include_software:bool -> float
