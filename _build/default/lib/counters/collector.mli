(** Measurement collection: runs a workload across thread counts and
    assembles the {!Series.t} that ESTIMA consumes (prediction step A). *)

type options = {
  seed : int;
  plugins : Plugin.t list;  (** Software stall plugins to enable. *)
  config_plugins : Plugin_config.entry list;
      (** User-supplied plugin configurations (paper Section 4.1): each
          entry reads the runtime's report file through its expression and
          contributes one more software category per sample. *)
  repetitions : int;
      (** Runs averaged per thread count; > 1 smooths simulator noise the
          way the paper averages repeated executions. *)
}

val default_options : options
(** seed 42, no plugins, 1 repetition. *)

val collect :
  ?options:options ->
  machine:Estima_machine.Topology.t ->
  spec:Estima_sim.Spec.t ->
  thread_counts:int list ->
  unit ->
  Series.t
(** Runs [spec] on [machine] at each thread count.  Raises
    [Invalid_argument] on an empty or out-of-range list. *)

val default_thread_counts : max:int -> int list
(** 1, 2, 3, ... up to [max]: the paper measures every core count up to
    the measurements machine's size. *)
