(* Tests for the workload suite: registry integrity and the published
   qualitative scalability of key benchmarks. *)

open Estima_machine
open Estima_sim
open Estima_workloads

let time ?(seed = 11) spec threads =
  (Engine.run ~seed ~machine:Machines.opteron48 ~spec ~threads ()).Engine.time_seconds

let speedup spec threads = time spec 1 /. time spec threads

(* ------------------------------------------------------------------ *)

let test_registry_counts () =
  Alcotest.(check int) "19 table-4 workloads" 19 (List.length Suite.benchmarks);
  Alcotest.(check int) "2 production apps" 2 (List.length Suite.production);
  Alcotest.(check int) "2 fixed variants" 2 (List.length Suite.variants);
  Alcotest.(check int) "23 total" 23 (List.length Suite.all)

let test_registry_names_unique () =
  let names = Suite.names Suite.all in
  Alcotest.(check int) "unique names" (List.length names) (List.length (List.sort_uniq compare names))

let test_registry_find () =
  (match Suite.find "intruder" with
  | Some e -> Alcotest.(check bool) "intruder is stamp" true (e.Suite.family = Suite.Stamp)
  | None -> Alcotest.fail "intruder missing");
  Alcotest.(check bool) "unknown" true (Suite.find "doom" = None)

let test_all_specs_validate () =
  List.iter
    (fun e ->
      match Spec.validate e.Suite.spec with
      | Ok () -> ()
      | Error err -> Alcotest.fail err)
    Suite.all

let test_stm_workloads_have_swisstm () =
  List.iter
    (fun e ->
      let is_stm =
        match e.Suite.spec.Spec.op.Spec.sync with Spec.Transactional _ -> true | _ -> false
      in
      let has_plugin =
        List.exists (fun p -> p.Estima_counters.Plugin.name = "stm-abort") e.Suite.plugins
      in
      if is_stm && not has_plugin then
        Alcotest.failf "%s: STM workload without SwissTM plugin" e.Suite.spec.Spec.name)
    Suite.all

let test_streamcluster_has_pthread_plugin () =
  match Suite.find "streamcluster" with
  | None -> Alcotest.fail "streamcluster missing"
  | Some e ->
      Alcotest.(check bool) "pthread plugin" true
        (List.exists (fun p -> p.Estima_counters.Plugin.name = "pthread-sync") e.Suite.plugins)

let test_family_labels () =
  Alcotest.(check string) "stamp" "stamp" (Suite.family_label Suite.Stamp);
  Alcotest.(check string) "application" "application" (Suite.family_label Suite.Application)

(* --- published qualitative behaviour -------------------------------- *)

let test_blackscholes_scales_linearly () =
  let s = speedup Parsec.blackscholes 12 in
  if s < 10.0 then Alcotest.failf "blackscholes speedup %.1f at 12" s

let test_swaptions_scales_linearly () =
  let s = speedup Parsec.swaptions 48 in
  if s < 40.0 then Alcotest.failf "swaptions speedup %.1f at 48" s

let test_raytrace_scales () =
  let s = speedup Parsec.raytrace 48 in
  if s < 30.0 then Alcotest.failf "raytrace speedup %.1f at 48" s

let test_genome_scales () =
  let s = speedup Stamp.genome 48 in
  if s < 15.0 then Alcotest.failf "genome speedup %.1f at 48" s

let test_intruder_peaks_then_degrades () =
  let t12 = time Stamp.intruder 12 and t48 = time Stamp.intruder 48 in
  if t48 <= t12 then Alcotest.fail "intruder should slow down past one socket";
  let s12 = speedup Stamp.intruder 12 in
  if s12 < 2.0 then Alcotest.failf "intruder should still scale to 12 (%.1f)" s12

let test_yada_degrades () =
  let t8 = time Stamp.yada 8 and t48 = time Stamp.yada 48 in
  if t48 <= t8 then Alcotest.fail "yada should slow down at high core counts"

let test_kmeans_stops_scaling () =
  let s24 = speedup Stamp.kmeans 24 and s48 = speedup Stamp.kmeans 48 in
  if s48 >= s24 *. 1.1 then Alcotest.failf "kmeans kept scaling: %.1f -> %.1f" s24 s48

let test_vacation_contention_ordering () =
  (* The high-contention configuration must scale worse than the low one. *)
  let high = speedup Stamp.vacation_high 48 and low = speedup Stamp.vacation_low 48 in
  if high >= low then Alcotest.failf "vacation-high (%.1f) should trail vacation-low (%.1f)" high low

let test_streamcluster_saturates () =
  let s32 = speedup Parsec.streamcluster 32 and s48 = speedup Parsec.streamcluster 48 in
  if s48 > s32 *. 1.15 then Alcotest.failf "streamcluster kept scaling: %.1f -> %.1f" s32 s48

let test_streamcluster_fix_helps_at_scale () =
  let orig = time Parsec.streamcluster 48 in
  let fixed = time Variants.streamcluster_spinlock 48 in
  if fixed >= orig then Alcotest.fail "spinlock barrier fix should improve streamcluster at 48";
  let improvement = 1.0 -. (fixed /. orig) in
  if improvement < 0.15 then Alcotest.failf "fix too weak: %.0f%%" (improvement *. 100.0)

let test_intruder_fix_helps_at_scale () =
  let orig = time Stamp.intruder 48 in
  let fixed = time Variants.intruder_batched 48 in
  if fixed >= orig then Alcotest.fail "batched decode should improve intruder at 48";
  let improvement = 1.0 -. (fixed /. orig) in
  if improvement < 0.3 then Alcotest.failf "fix too weak: %.0f%%" (improvement *. 100.0)

let test_fixes_do_not_break_low_counts () =
  (* The fixes must not make the applications much slower at small scale. *)
  let sc_orig = time Parsec.streamcluster 4 and sc_fix = time Variants.streamcluster_spinlock 4 in
  if sc_fix > sc_orig *. 1.2 then Alcotest.fail "spinlock fix hurts at 4 cores";
  let in_orig = time Stamp.intruder 4 and in_fix = time Variants.intruder_batched 4 in
  if in_fix > in_orig *. 1.2 then Alcotest.fail "batching hurts at 4 cores"

let test_sqlite_stops_early () =
  let s4 = speedup Apps.sqlite_tpcc 4 and s16 = speedup Apps.sqlite_tpcc 16 in
  if s4 > 3.0 then Alcotest.failf "sqlite scaled too well at 4: %.1f" s4;
  if s16 > s4 *. 1.3 then Alcotest.failf "sqlite kept scaling: %.1f -> %.1f" s4 s16

let test_memcached_saturates_mid () =
  (* The Fig 6 setting: the server runs on one Xeon20 socket (10 cores,
     20 hardware threads); throughput must flatten in the SMT region. *)
  let socket = Machines.restrict_sockets Machines.xeon20 ~sockets:1 in
  let time n = (Engine.run ~seed:11 ~machine:socket ~spec:Apps.memcached ~threads:n ()).Engine.time_seconds in
  let t1 = time 1 and t10 = time 10 and t20 = time 20 in
  let s10 = t1 /. t10 and s20 = t1 /. t20 in
  if s10 < 4.0 then Alcotest.failf "memcached should scale on physical cores (%.1f)" s10;
  if s20 > s10 *. 1.5 then Alcotest.failf "memcached kept scaling into SMT: %.1f -> %.1f" s10 s20

let test_lockfree_beats_lockbased_skiplist () =
  let lb = speedup Micro.lock_based_skiplist 48 in
  let lf = speedup Micro.lock_free_skiplist 48 in
  ignore lf;
  (* Both scale; the lock-based one pays spinning that the CAS version
     converts into (cheaper) coherence, so it must not win by much. *)
  if lb > 45.0 then Alcotest.failf "lock-based SL implausibly linear: %.1f" lb

let test_dataset_scale () =
  let doubled = Spec.dataset_scale Stamp.genome 2.0 in
  Alcotest.(check int) "shared footprint doubled" (2 * Stamp.genome.Spec.shared_footprint_lines)
    doubled.Spec.shared_footprint_lines;
  (match (doubled.Spec.scaling, Stamp.genome.Spec.scaling) with
  | Spec.Strong a, Spec.Strong b -> Alcotest.(check int) "ops doubled" (2 * b) a
  | _ -> Alcotest.fail "scaling kind changed");
  Alcotest.check_raises "non-positive factor" (Invalid_argument "Spec.dataset_scale: non-positive factor")
    (fun () -> ignore (Spec.dataset_scale Stamp.genome 0.0))

let test_profile_make_exclusive_scaling () =
  (try
     ignore (Profile.make ~name:"bad" ~total_ops:10 ~ops_per_thread:10 ());
     Alcotest.fail "accepted both scalings"
   with Invalid_argument _ -> ())

let suite =
  [
    ("registry counts", `Quick, test_registry_counts);
    ("registry names unique", `Quick, test_registry_names_unique);
    ("registry find", `Quick, test_registry_find);
    ("all specs validate", `Quick, test_all_specs_validate);
    ("stm workloads have swisstm", `Quick, test_stm_workloads_have_swisstm);
    ("streamcluster has pthread plugin", `Quick, test_streamcluster_has_pthread_plugin);
    ("family labels", `Quick, test_family_labels);
    ("blackscholes scales linearly", `Quick, test_blackscholes_scales_linearly);
    ("swaptions scales linearly", `Quick, test_swaptions_scales_linearly);
    ("raytrace scales", `Quick, test_raytrace_scales);
    ("genome scales", `Quick, test_genome_scales);
    ("intruder peaks then degrades", `Quick, test_intruder_peaks_then_degrades);
    ("yada degrades", `Quick, test_yada_degrades);
    ("kmeans stops scaling", `Quick, test_kmeans_stops_scaling);
    ("vacation contention ordering", `Quick, test_vacation_contention_ordering);
    ("streamcluster saturates", `Quick, test_streamcluster_saturates);
    ("streamcluster fix helps at scale", `Quick, test_streamcluster_fix_helps_at_scale);
    ("intruder fix helps at scale", `Quick, test_intruder_fix_helps_at_scale);
    ("fixes do not break low counts", `Quick, test_fixes_do_not_break_low_counts);
    ("sqlite stops early", `Quick, test_sqlite_stops_early);
    ("memcached saturates mid", `Quick, test_memcached_saturates_mid);
    ("lock-based skiplist plausible", `Quick, test_lockfree_beats_lockbased_skiplist);
    ("dataset scale", `Quick, test_dataset_scale);
    ("profile make exclusive scaling", `Quick, test_profile_make_exclusive_scaling);
  ]
