(* Unit and property tests for the estima_numerics substrate. *)

open Estima_numerics

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_float ?(eps = 1e-9) what expected actual =
  if not (approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected actual

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 8 (fun _ -> Rng.int64 a) in
  let ys = List.init 8 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "different seeds diverge" true (xs <> ys)

let test_rng_float_range () =
  let t = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float t in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %g" x
  done

let test_rng_float_mean () =
  let t = Rng.create 11 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float t
  done;
  let mean = !acc /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then Alcotest.failf "uniform mean off: %g" mean

let test_rng_int_bounds () =
  let t = Rng.create 3 in
  let seen = Array.make 10 false in
  for _ = 1 to 5_000 do
    let v = Rng.int t 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_rng_int_invalid () =
  let t = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int t 0))

let test_rng_split_independent () =
  let parent = Rng.create 99 in
  let child = Rng.split parent in
  let xs = List.init 16 (fun _ -> Rng.int64 parent) in
  let ys = List.init 16 (fun _ -> Rng.int64 child) in
  Alcotest.(check bool) "split streams diverge" true (xs <> ys)

let test_rng_exponential_mean () =
  let t = Rng.create 5 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential t 4.0
  done;
  let mean = !acc /. float_of_int n in
  if Float.abs (mean -. 4.0) > 0.1 then Alcotest.failf "exponential mean off: %g" mean

let test_rng_gaussian_moments () =
  let t = Rng.create 13 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian t ~mu:2.0 ~sigma:3.0) in
  let m = Stats.mean xs and s = Stats.std_dev xs in
  if Float.abs (m -. 2.0) > 0.1 then Alcotest.failf "gaussian mean off: %g" m;
  if Float.abs (s -. 3.0) > 0.1 then Alcotest.failf "gaussian sigma off: %g" s

let test_rng_zipf_skew () =
  let t = Rng.create 17 in
  let counts = Array.make 20 0 in
  for _ = 1 to 20_000 do
    let r = Rng.zipf t ~n:20 ~s:1.0 in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(5));
  Alcotest.(check bool) "rank 5 beats rank 19" true (counts.(5) > counts.(19))

let test_rng_bool_extremes () =
  let t = Rng.create 23 in
  Alcotest.(check bool) "p=0 never" false (Rng.bool t 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bool t 1.0)

let test_rng_shuffle_permutation () =
  let t = Rng.create 29 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle preserves elements" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_ops () =
  let a = Vec.of_list [ 1.0; 2.0; 3.0 ] and b = Vec.of_list [ 4.0; 5.0; 6.0 ] in
  check_float "dot" 32.0 (Vec.dot a b);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 a);
  check_float "norm_inf" 3.0 (Vec.norm_inf a);
  check_float "sum" 6.0 (Vec.sum a);
  Alcotest.(check (array (float 1e-12))) "add" [| 5.0; 7.0; 9.0 |] (Vec.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub a b);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.0; 4.0; 6.0 |] (Vec.scale 2.0 a)

let test_vec_axpy () =
  let x = Vec.of_list [ 1.0; 1.0 ] in
  let y = Vec.of_list [ 2.0; 3.0 ] in
  Vec.axpy 2.0 x y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 4.0; 5.0 |] y

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_vec_finite () =
  Alcotest.(check bool) "finite" true (Vec.all_finite [| 1.0; -2.0 |]);
  Alcotest.(check bool) "nan" false (Vec.all_finite [| 1.0; Float.nan |]);
  Alcotest.(check bool) "inf" false (Vec.all_finite [| Float.infinity |])

let test_vec_minmax () =
  let v = Vec.of_list [ 3.0; -1.0; 7.0 ] in
  check_float "max" 7.0 (Vec.max_elt v);
  check_float "min" (-1.0) (Vec.min_elt v)

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  check_float "c00" 19.0 (Mat.get c 0 0);
  check_float "c01" 22.0 (Mat.get c 0 1);
  check_float "c10" 43.0 (Mat.get c 1 0);
  check_float "c11" 50.0 (Mat.get c 1 1)

let test_mat_transpose () =
  let a = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  Alcotest.(check int) "cols" 2 (Mat.cols t);
  check_float "t(2,1)" 6.0 (Mat.get t 2 1)

let test_mat_mul_vec () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 1e-12))) "mul_vec" [| 5.0; 11.0 |] (Mat.mul_vec a [| 1.0; 2.0 |])

let test_mat_identity () =
  let i3 = Mat.identity 3 in
  let a = Mat.of_arrays [| [| 1.0; 2.0; 0.0 |]; [| 0.0; 1.0; 5.0 |]; [| 7.0; 0.0; 1.0 |] |] in
  let prod = Mat.mul a i3 in
  Alcotest.(check (array (array (float 1e-12)))) "a * I = a" (Mat.to_arrays a) (Mat.to_arrays prod)

let test_mat_diagonal_damping () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let d = Mat.add_diagonal a 0.5 in
  check_float "diag add" 2.5 (Mat.get d 0 0);
  check_float "off diag untouched" 1.0 (Mat.get d 0 1);
  let s = Mat.scale_diagonal a 0.5 in
  check_float "diag scale" 3.0 (Mat.get s 0 0)

let test_mat_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged rows") (fun () ->
      ignore (Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

(* ------------------------------------------------------------------ *)
(* Qr                                                                  *)
(* ------------------------------------------------------------------ *)

let test_qr_square_solve () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Qr.solve_square a [| 5.0; 10.0 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 3.0 x.(1)

let test_qr_least_squares_line () =
  (* Fit y = 2x + 1 exactly through noiseless points. *)
  let xs = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let a = Mat.init 5 2 (fun i j -> if j = 0 then 1.0 else xs.(i)) in
  let b = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let c = Qr.solve_least_squares a b in
  check_float "intercept" 1.0 c.(0);
  check_float "slope" 2.0 c.(1)

let test_qr_least_squares_overdetermined () =
  (* Residual must be orthogonal to the column space. *)
  let a = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 1.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let b = [| 1.0; 0.0; 2.0 |] in
  let x = Qr.solve_least_squares a b in
  let r = Vec.sub (Mat.mul_vec a x) b in
  let at_r = Mat.mul_vec (Mat.transpose a) r in
  if Vec.norm_inf at_r > 1e-9 then Alcotest.failf "normal equations violated: %g" (Vec.norm_inf at_r)

let test_qr_singular () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |]; [| 3.0; 6.0 |] |] in
  Alcotest.check_raises "singular" Qr.Singular (fun () ->
      ignore (Qr.solve_least_squares a [| 1.0; 2.0; 3.0 |]))

let test_qr_decompose_reconstructs () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let q, r = Qr.decompose a in
  let qr = Mat.mul q r in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> check_float ~eps:1e-9 (Printf.sprintf "qr(%d,%d)" i j) v (Mat.get qr i j)) row)
    (Mat.to_arrays a);
  (* Q orthogonal: Q^T Q = I. *)
  let qtq = Mat.mul (Mat.transpose q) q in
  for i = 0 to 2 do
    for j = 0 to 2 do
      check_float ~eps:1e-9 "orthogonality" (if i = j then 1.0 else 0.0) (Mat.get qtq i j)
    done
  done

let test_qr_underdetermined_rejected () =
  let a = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |] |] in
  Alcotest.check_raises "underdetermined"
    (Invalid_argument "Qr.solve_least_squares: underdetermined system") (fun () ->
      ignore (Qr.solve_least_squares a [| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean xs);
  check_float "std" 2.0 (Stats.std_dev xs)

let test_stats_rmse () =
  check_float "rmse" 1.0 (Stats.rmse [| 1.0; 3.0 |] [| 2.0; 4.0 |]);
  check_float "rmse mixed" (sqrt 2.5) (Stats.rmse [| 0.0; 0.0 |] [| 1.0; 2.0 |]);
  check_float "rmse zero" 0.0 (Stats.rmse [| 1.0; 2.0 |] [| 1.0; 2.0 |])

let test_stats_pearson_perfect () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) +. 1.0) xs in
  check_float "perfect positive" 1.0 (Stats.pearson xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_float "perfect negative" (-1.0) (Stats.pearson xs zs)

let test_stats_pearson_constant_nan () =
  let r = Stats.pearson [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "constant gives nan" true (Float.is_nan r)

let test_stats_spearman_monotone () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let ys = Array.map (fun x -> Float.pow x 3.0) xs in
  check_float "monotone nonlinear" 1.0 (Stats.spearman xs ys)

let test_stats_max_rel_error () =
  let e = Stats.max_abs_relative_error [| 110.0; 90.0 |] [| 100.0; 100.0 |] in
  check_float "max rel" 0.1 e;
  (* Zero actuals are skipped, not divided by. *)
  let e2 = Stats.max_abs_relative_error [| 5.0; 110.0 |] [| 0.0; 100.0 |] in
  check_float "skip zero" 0.1 e2

let test_stats_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "median" 2.5 (Stats.quantile 0.5 xs);
  check_float "min" 1.0 (Stats.quantile 0.0 xs);
  check_float "max" 4.0 (Stats.quantile 1.0 xs)

let test_stats_argminmax () =
  let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0 |] in
  Alcotest.(check int) "argmax" 4 (Stats.argmax xs);
  Alcotest.(check int) "argmin" 1 (Stats.argmin xs)

(* ------------------------------------------------------------------ *)
(* Linear_fit                                                          *)
(* ------------------------------------------------------------------ *)

let test_linear_fit_polynomial_exact () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let ys = Array.map (fun x -> 2.0 +. (3.0 *. x) -. (0.5 *. x *. x)) xs in
  let c = Linear_fit.polynomial ~degree:2 ~xs ~ys in
  check_float "c0" 2.0 c.(0);
  check_float "c1" 3.0 c.(1);
  check_float "c2" (-0.5) c.(2);
  check_float "eval" (2.0 +. 30.0 -. 50.0) (Linear_fit.eval_polynomial c 10.0)

let test_linear_fit_custom_basis () =
  let xs = [| 1.0; 2.0; 4.0; 8.0 |] in
  let ys = Array.map (fun x -> 1.5 +. (2.0 *. log x)) xs in
  let c = Linear_fit.fit ~basis:[| (fun _ -> 1.0); log |] ~xs ~ys in
  check_float "a" 1.5 c.(0);
  check_float "b" 2.0 c.(1)

let test_linear_fit_too_few_points () =
  Alcotest.check_raises "too few" (Invalid_argument "Linear_fit.fit: fewer points than basis functions")
    (fun () -> ignore (Linear_fit.polynomial ~degree:3 ~xs:[| 1.0; 2.0 |] ~ys:[| 1.0; 2.0 |]))

(* ------------------------------------------------------------------ *)
(* Lm                                                                  *)
(* ------------------------------------------------------------------ *)

let rosenbrock_objective =
  (* Classic Rosenbrock in residual form: r = (1-a, 10(b-a^2)). *)
  let residual p = [| 1.0 -. p.(0); 10.0 *. (p.(1) -. (p.(0) *. p.(0))) |] in
  { Lm.residual; jacobian = (fun p -> Lm.finite_difference_jacobian residual p) }

let test_lm_rosenbrock () =
  let result = Lm.minimize rosenbrock_objective ~init:[| -1.2; 1.0 |] in
  check_float ~eps:1e-5 "a" 1.0 result.params.(0);
  check_float ~eps:1e-5 "b" 1.0 result.params.(1);
  if result.cost > 1e-10 then Alcotest.failf "cost not near zero: %g" result.cost

let test_lm_exponential_fit () =
  (* Fit y = a * exp(b x) on exact data. *)
  let xs = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> 2.0 *. exp (0.5 *. x)) xs in
  let residual p = Array.mapi (fun i x -> (p.(0) *. exp (p.(1) *. x)) -. ys.(i)) xs in
  let objective = { Lm.residual; jacobian = (fun p -> Lm.finite_difference_jacobian residual p) } in
  let result = Lm.minimize objective ~init:[| 1.0; 0.1 |] in
  check_float ~eps:1e-6 "a" 2.0 result.params.(0);
  check_float ~eps:1e-6 "b" 0.5 result.params.(1)

let test_lm_linear_exact_one_hop () =
  (* A linear residual should converge essentially immediately. *)
  let residual p = [| p.(0) -. 3.0; p.(1) +. 4.0 |] in
  let objective = { Lm.residual; jacobian = (fun p -> Lm.finite_difference_jacobian residual p) } in
  let result = Lm.minimize objective ~init:[| 0.0; 0.0 |] in
  Alcotest.(check bool) "converged" true (result.outcome = Lm.Converged);
  check_float ~eps:1e-8 "p0" 3.0 result.params.(0);
  check_float ~eps:1e-8 "p1" (-4.0) result.params.(1)

let test_lm_pole_recovery () =
  (* Model with a pole at p = x: trial steps into the pole produce non-finite
     residuals, which must be rejected rather than crash. *)
  let xs = [| 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> 1.0 /. (x +. 0.5)) xs in
  let residual p = Array.mapi (fun i x -> (1.0 /. (x +. p.(0))) -. ys.(i)) xs in
  let objective = { Lm.residual; jacobian = (fun p -> Lm.finite_difference_jacobian residual p) } in
  let result = Lm.minimize objective ~init:[| 2.0 |] in
  check_float ~eps:1e-6 "pole offset" 0.5 result.params.(0)

let test_lm_nonfinite_init_rejected () =
  let residual p = [| 1.0 /. p.(0) |] in
  let objective = { Lm.residual; jacobian = (fun p -> Lm.finite_difference_jacobian residual p) } in
  Alcotest.check_raises "non-finite init"
    (Invalid_argument "Lm.minimize: non-finite residual at initial point") (fun () ->
      ignore (Lm.minimize objective ~init:[| 0.0 |]))

let test_lm_finite_difference_accuracy () =
  let residual p = [| p.(0) *. p.(0); sin p.(1); p.(0) *. p.(1) |] in
  let p = [| 1.5; 0.7 |] in
  let jac = Lm.finite_difference_jacobian residual p in
  check_float ~eps:1e-6 "d(r0)/d(p0)" 3.0 (Mat.get jac 0 0);
  check_float ~eps:1e-6 "d(r1)/d(p1)" (cos 0.7) (Mat.get jac 1 1);
  check_float ~eps:1e-6 "d(r2)/d(p0)" 0.7 (Mat.get jac 2 0);
  check_float ~eps:1e-6 "d(r2)/d(p1)" 1.5 (Mat.get jac 2 1)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng float mean", `Quick, test_rng_float_mean);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int invalid", `Quick, test_rng_int_invalid);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng gaussian moments", `Quick, test_rng_gaussian_moments);
    ("rng zipf skew", `Quick, test_rng_zipf_skew);
    ("rng bool extremes", `Quick, test_rng_bool_extremes);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("vec ops", `Quick, test_vec_ops);
    ("vec axpy", `Quick, test_vec_axpy);
    ("vec mismatch", `Quick, test_vec_mismatch);
    ("vec finite", `Quick, test_vec_finite);
    ("vec minmax", `Quick, test_vec_minmax);
    ("mat mul", `Quick, test_mat_mul);
    ("mat transpose", `Quick, test_mat_transpose);
    ("mat mul_vec", `Quick, test_mat_mul_vec);
    ("mat identity", `Quick, test_mat_identity);
    ("mat diagonal damping", `Quick, test_mat_diagonal_damping);
    ("mat ragged", `Quick, test_mat_ragged);
    ("qr square solve", `Quick, test_qr_square_solve);
    ("qr least squares line", `Quick, test_qr_least_squares_line);
    ("qr overdetermined residual", `Quick, test_qr_least_squares_overdetermined);
    ("qr singular", `Quick, test_qr_singular);
    ("qr decompose reconstructs", `Quick, test_qr_decompose_reconstructs);
    ("qr underdetermined rejected", `Quick, test_qr_underdetermined_rejected);
    ("stats basic", `Quick, test_stats_basic);
    ("stats rmse", `Quick, test_stats_rmse);
    ("stats pearson perfect", `Quick, test_stats_pearson_perfect);
    ("stats pearson constant nan", `Quick, test_stats_pearson_constant_nan);
    ("stats spearman monotone", `Quick, test_stats_spearman_monotone);
    ("stats max rel error", `Quick, test_stats_max_rel_error);
    ("stats quantile", `Quick, test_stats_quantile);
    ("stats argminmax", `Quick, test_stats_argminmax);
    ("linear fit polynomial exact", `Quick, test_linear_fit_polynomial_exact);
    ("linear fit custom basis", `Quick, test_linear_fit_custom_basis);
    ("linear fit too few points", `Quick, test_linear_fit_too_few_points);
    ("lm rosenbrock", `Quick, test_lm_rosenbrock);
    ("lm exponential fit", `Quick, test_lm_exponential_fit);
    ("lm linear exact", `Quick, test_lm_linear_exact_one_hop);
    ("lm pole recovery", `Quick, test_lm_pole_recovery);
    ("lm nonfinite init rejected", `Quick, test_lm_nonfinite_init_rejected);
    ("lm finite difference accuracy", `Quick, test_lm_finite_difference_accuracy);
  ]
