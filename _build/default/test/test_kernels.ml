(* Tests for the Table 1 kernel set and the fitter. *)

open Estima_numerics
open Estima_kernels

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1.0 (Float.max (Float.abs expected) (Float.abs actual))
  then Alcotest.failf "%s: expected %.12g, got %.12g" what expected actual

let grid = Array.init 10 (fun i -> float_of_int (i + 1))

(* Analytic gradients must agree with finite differences for every kernel. *)
let check_gradient (kernel : Kernel.t) params =
  Array.iter
    (fun x ->
      let analytic = kernel.Kernel.gradient params x in
      let residual p = [| kernel.Kernel.eval p x |] in
      let fd = Lm.finite_difference_jacobian residual params in
      for j = 0 to kernel.Kernel.arity - 1 do
        let a = analytic.(j) and b = Mat.get fd 0 j in
        if Float.abs (a -. b) > 1e-5 *. Float.max 1.0 (Float.abs b) then
          Alcotest.failf "%s gradient (%g) component %d: analytic %.10g vs fd %.10g" kernel.Kernel.name x j a b
      done)
    grid

let test_rat22_gradient () = check_gradient Rational.rat22 [| 1.0; 0.5; 0.2; 0.1; 0.05 |]
let test_rat23_gradient () = check_gradient Rational.rat23 [| 1.0; 0.5; 0.2; 0.1; 0.05; 0.01 |]
let test_rat33_gradient () = check_gradient Rational.rat33 [| 1.0; 0.5; 0.2; 0.1; 0.1; 0.05; 0.01 |]
let test_cubic_ln_gradient () = check_gradient Cubic_ln.kernel [| 2.0; 1.0; 0.5; 0.1 |]
let test_exp_rat_gradient () = check_gradient Exp_rat.kernel [| 0.5; 0.2; 1.0; 0.1 |]
let test_poly25_gradient () = check_gradient Poly25.kernel [| 1.0; 0.5; 0.2; 0.1 |]

let test_catalogue_complete () =
  Alcotest.(check (list string))
    "table 1 order"
    [ "Rat22"; "Rat23"; "Rat33"; "CubicLn"; "ExpRat"; "Poly25" ]
    Catalogue.names

let test_catalogue_find () =
  Alcotest.(check bool) "finds Rat22" true (Catalogue.find "Rat22" <> None);
  Alcotest.(check bool) "rejects unknown" true (Catalogue.find "Spline" = None)

let test_arities () =
  let expect = [ ("Rat22", 5); ("Rat23", 6); ("Rat33", 7); ("CubicLn", 4); ("ExpRat", 4); ("Poly25", 4) ] in
  List.iter
    (fun (name, arity) ->
      match Catalogue.find name with
      | None -> Alcotest.failf "missing kernel %s" name
      | Some k -> Alcotest.(check int) name arity k.Kernel.arity)
    expect

(* Each kernel must recover data generated from itself (exact fit). *)
let roundtrip kernel params =
  let xs = Array.init 12 (fun i -> float_of_int (i + 1)) in
  let ys = Array.map (kernel.Kernel.eval params) xs in
  match Fit.fit kernel ~xs ~ys with
  | None -> Alcotest.failf "%s: fit returned None" kernel.Kernel.name
  | Some fitted ->
      let scale = Float.max 1.0 (Vec.norm_inf ys) in
      Array.iter
        (fun x ->
          let want = kernel.Kernel.eval params x and got = fitted.Fit.eval x in
          if Float.abs (want -. got) > 1e-4 *. scale then
            Alcotest.failf "%s at %g: want %.8g got %.8g" kernel.Kernel.name x want got)
        xs

let test_roundtrip_rat22 () = roundtrip Rational.rat22 [| 5.0; 2.0; 0.3; 0.2; 0.01 |]
let test_roundtrip_cubic_ln () = roundtrip Cubic_ln.kernel [| 3.0; 2.0; -0.5; 0.05 |]
let test_roundtrip_exp_rat () = roundtrip Exp_rat.kernel [| 0.2; 0.4; 1.0; 0.08 |]
let test_roundtrip_poly25 () = roundtrip Poly25.kernel [| 10.0; 3.0; 0.5; 0.02 |]

let test_fit_scaling_invariance () =
  (* Fitting y and 1e9 * y must give proportional fits (normalisation works). *)
  let xs = Array.init 10 (fun i -> float_of_int (i + 1)) in
  let ys = Array.map (fun x -> 2.0 +. (0.3 *. x *. x)) xs in
  let big = Array.map (fun y -> 1e9 *. y) ys in
  match (Fit.fit Poly25.kernel ~xs ~ys, Fit.fit Poly25.kernel ~xs ~ys:big) with
  | Some a, Some b ->
      Array.iter
        (fun x -> check_float ~eps:1e-6 "proportional" (1e9 *. a.Fit.eval x) (b.Fit.eval x))
        [| 2.0; 8.0; 20.0; 48.0 |]
  | _ -> Alcotest.fail "fit failed"

let test_fit_too_few_points () =
  let xs = [| 1.0; 2.0; 3.0 |] and ys = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "rat22 needs 5 points" true (Fit.fit Rational.rat22 ~xs ~ys = None)

let test_exp_rat_rejects_nonpositive () =
  let xs = Array.init 6 (fun i -> float_of_int (i + 1)) in
  let ys = [| 1.0; 2.0; -3.0; 4.0; 5.0; 6.0 |] in
  Alcotest.(check bool) "no guesses on negative data" true
    (Exp_rat.kernel.Kernel.initial_guesses ~xs ~ys = [])

let test_realism_rejects_pole () =
  (* A rational with a pole inside the extrapolation range is unrealistic. *)
  let params = [| 1.0; 0.0; 0.0; -0.1; 0.0 |] in
  (* denominator 1 - 0.1 n: pole at n = 10 *)
  let fitted =
    {
      Fit.kernel_name = "Rat22";
      params;
      y_scale = 1.0;
      fit_rmse = 0.0;
      eval = (fun x -> Rational.rat22.Kernel.eval params x);
    }
  in
  Alcotest.(check bool) "pole inside range rejected" false
    (Fit.realistic fitted ~x_min:1.0 ~x_max:48.0 ~require_nonnegative:true);
  Alcotest.(check bool) "pole outside range accepted" true
    (Fit.realistic fitted ~x_min:1.0 ~x_max:8.0 ~require_nonnegative:true)

let test_realism_rejects_negative () =
  let fitted =
    { Fit.kernel_name = "lin"; params = [||]; y_scale = 1.0; fit_rmse = 0.0; eval = (fun x -> 5.0 -. x) }
  in
  Alcotest.(check bool) "goes negative" false
    (Fit.realistic fitted ~x_min:1.0 ~x_max:48.0 ~require_nonnegative:true);
  Alcotest.(check bool) "negativity allowed when not required" true
    (Fit.realistic fitted ~x_min:1.0 ~x_max:48.0 ~require_nonnegative:false)

let test_fit_noisy_saturating_curve () =
  (* A saturating stall curve with mild deterministic noise: at least one
     kernel must fit with small relative RMSE. *)
  let xs = Array.init 12 (fun i -> float_of_int (i + 1)) in
  let ys =
    Array.mapi
      (fun i x ->
        let clean = 1e6 *. (1.0 +. (3.0 *. x /. (x +. 6.0))) in
        clean *. (1.0 +. (0.01 *. sin (float_of_int i))))
      xs
  in
  let best =
    List.filter_map (fun k -> Fit.fit k ~xs ~ys) Catalogue.all
    |> List.sort (fun a b -> Float.compare a.Fit.fit_rmse b.Fit.fit_rmse)
  in
  match best with
  | [] -> Alcotest.fail "no kernel fitted"
  | f :: _ ->
      if f.Fit.fit_rmse > 0.02 *. 4e6 then
        Alcotest.failf "best fit too poor: %s rmse %.3g" f.Fit.kernel_name f.Fit.fit_rmse

let test_rational_make_validation () =
  Alcotest.check_raises "bad degrees" (Invalid_argument "Rational.make: bad degrees") (fun () ->
      ignore (Rational.make ~name:"bad" ~num_degree:1 ~den_degree:0))

let test_kernel_applicable () =
  Alcotest.(check bool) "5 points enough for rat22" true (Kernel.applicable Rational.rat22 ~npoints:5);
  Alcotest.(check bool) "4 points not enough" false (Kernel.applicable Rational.rat22 ~npoints:4)

let test_evaluate_many () =
  let fitted =
    { Fit.kernel_name = "lin"; params = [||]; y_scale = 1.0; fit_rmse = 0.0; eval = (fun x -> 2.0 *. x) }
  in
  Alcotest.(check (array (float 1e-12))) "grid" [| 2.0; 4.0; 6.0 |]
    (Fit.evaluate_many fitted [| 1.0; 2.0; 3.0 |])

let suite =
  [
    ("rat22 gradient", `Quick, test_rat22_gradient);
    ("rat23 gradient", `Quick, test_rat23_gradient);
    ("rat33 gradient", `Quick, test_rat33_gradient);
    ("cubic_ln gradient", `Quick, test_cubic_ln_gradient);
    ("exp_rat gradient", `Quick, test_exp_rat_gradient);
    ("poly25 gradient", `Quick, test_poly25_gradient);
    ("catalogue complete", `Quick, test_catalogue_complete);
    ("catalogue find", `Quick, test_catalogue_find);
    ("arities", `Quick, test_arities);
    ("roundtrip rat22", `Quick, test_roundtrip_rat22);
    ("roundtrip cubic_ln", `Quick, test_roundtrip_cubic_ln);
    ("roundtrip exp_rat", `Quick, test_roundtrip_exp_rat);
    ("roundtrip poly25", `Quick, test_roundtrip_poly25);
    ("fit scaling invariance", `Quick, test_fit_scaling_invariance);
    ("fit too few points", `Quick, test_fit_too_few_points);
    ("exp_rat rejects nonpositive", `Quick, test_exp_rat_rejects_nonpositive);
    ("realism rejects pole", `Quick, test_realism_rejects_pole);
    ("realism rejects negative", `Quick, test_realism_rejects_negative);
    ("fit noisy saturating curve", `Quick, test_fit_noisy_saturating_curve);
    ("rational make validation", `Quick, test_rational_make_validation);
    ("kernel applicable", `Quick, test_kernel_applicable);
    ("evaluate many", `Quick, test_evaluate_many);
  ]
