(* Tests for event attribution, plugins, samples, series and collection. *)

open Estima_machine
open Estima_sim
open Estima_counters

let stm_spec =
  {
    Spec.name = "counters-stm";
    scaling = Spec.Strong 6_000;
    private_footprint_lines = 1000;
    shared_footprint_lines = 4000;
    footprint_scales_with_threads = false;
    op =
      {
        Spec.useful_cycles = 300.0;
        useful_cv = 0.05;
        mem_reads = 6;
        mem_writes = 2;
        shared_fraction = 0.3;
        write_shared_fraction = 0.3;
        fp_fraction = 0.1;
        dependency_factor = 0.15;
        branch_mpki = 2.0;
        frontend_cycles = 8.0;
        sync = Spec.Transactional { reads = 8; writes = 4; key_space = 512; abort_penalty_cycles = 40.0 };
        barrier_every = None;
        barrier_kind = Spec.Spinlock;
      };
  }

let run_once ?(machine = Machines.opteron48) ?(threads = 8) () =
  Engine.run ~seed:5 ~machine ~spec:stm_spec ~threads ()

(* Substring check without depending on astring. *)
let astring_free_contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let _ = astring_free_contains

(* ------------------------------------------------------------------ *)

let test_event_tables () =
  Alcotest.(check int) "amd table 2 size" 5 (List.length Event.amd_backend);
  Alcotest.(check int) "intel table 3 size" 5 (List.length Event.intel_backend);
  let codes = List.map (fun e -> e.Event.code) Event.amd_backend in
  Alcotest.(check (list string)) "amd codes" [ "0D2h"; "0D5h"; "0D6h"; "0D7h"; "0D8h" ] codes;
  let icodes = List.map (fun e -> e.Event.code) Event.intel_backend in
  Alcotest.(check (list string)) "intel codes" [ "0487h"; "01A2h"; "04A2h"; "08A2h"; "10A2h" ] icodes

let test_event_find () =
  Alcotest.(check bool) "amd ls full" true (Event.find Topology.Amd "0D8h" <> None);
  Alcotest.(check bool) "intel rob" true (Event.find Topology.Intel "10A2h" <> None);
  Alcotest.(check bool) "cross vendor miss" true (Event.find Topology.Intel "0D8h" = None)

let test_attribution_weights_sum_to_one () =
  List.iter
    (fun vendor ->
      List.iter
        (fun cause ->
          let rows = Event.attribution vendor cause in
          if Stall.is_software cause then
            Alcotest.(check int) "software unattributed" 0 (List.length rows)
          else begin
            let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 rows in
            if Float.abs (total -. 1.0) > 1e-9 then
              Alcotest.failf "%s attribution sums to %g" (Stall.label cause) total
          end)
        Stall.all)
    [ Topology.Amd; Topology.Intel ]

let test_attribution_conserves_cycles () =
  (* Sum of attributed counters = hardware stalls in the ledger. *)
  let r = run_once () in
  let attributed = Event.attribute_ledger Topology.Amd r.Engine.ledger in
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 attributed in
  let expected =
    Ledger.total_hardware_backend r.Engine.ledger +. Ledger.get r.Engine.ledger Stall.Frontend
  in
  if Float.abs (total -. expected) > 1e-6 *. expected then
    Alcotest.failf "attribution leaks cycles: %g vs %g" total expected

let test_plugin_pthread_rejects_nothing () =
  (match Plugin.validate Plugin.pthread_wrapper with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Plugin.validate Plugin.swisstm with Ok () -> () | Error e -> Alcotest.fail e

let test_plugin_rejects_hardware_causes () =
  let bad = { Plugin.name = "bad"; causes = [ Stall.Coherence ]; combine = Plugin.Sum } in
  match Plugin.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "hardware cause accepted in plugin"

let test_plugin_reads_stm_aborts () =
  let r = run_once ~threads:12 () in
  let v = Plugin.read Plugin.swisstm r in
  let expect = Ledger.get r.Engine.ledger Stall.Stm_abort in
  Alcotest.(check (float 1e-6)) "sum equals merged ledger" expect v

let test_plugin_combines () =
  let r = run_once ~threads:4 () in
  let base = { Plugin.swisstm with Plugin.combine = Plugin.Max } in
  let vmax = Plugin.read base r in
  let vmin = Plugin.read { base with Plugin.combine = Plugin.Min } r in
  let vavg = Plugin.read { base with Plugin.combine = Plugin.Average } r in
  Alcotest.(check bool) "min <= avg <= max" true (vmin <= vavg && vavg <= vmax)

let test_sample_of_run () =
  let r = run_once () in
  let s = Sample.of_run ~plugins:[ Plugin.swisstm ] ~vendor:Topology.Amd r in
  Alcotest.(check int) "threads" 8 s.Sample.threads;
  Alcotest.(check int) "six events (5 backend + frontend)" 6 (List.length s.Sample.counters);
  Alcotest.(check int) "one plugin" 1 (List.length s.Sample.software);
  Alcotest.(check bool) "counter lookup" true (Sample.counter s "0D8h" >= 0.0);
  Alcotest.(check bool) "plugin lookup" true (Sample.counter s "stm-abort" >= 0.0);
  (try
     ignore (Sample.counter s "bogus");
     Alcotest.fail "unknown category accepted"
   with Not_found -> ())

let test_sample_categories () =
  let r = run_once () in
  let s = Sample.of_run ~plugins:[ Plugin.swisstm ] ~vendor:Topology.Amd r in
  let no_fe = Sample.categories s ~include_frontend:false in
  let with_fe = Sample.categories s ~include_frontend:true in
  Alcotest.(check int) "5 hw + 1 sw" 6 (List.length no_fe);
  Alcotest.(check int) "6 hw + 1 sw" 7 (List.length with_fe);
  Alcotest.(check bool) "frontend excluded" true (not (List.mem "0D0h" no_fe));
  Alcotest.(check bool) "frontend included" true (List.mem "0D0h" with_fe)

let test_sample_total_stalls () =
  let r = run_once () in
  let s = Sample.of_run ~plugins:[ Plugin.swisstm ] ~vendor:Topology.Amd r in
  let hw = Sample.total_stalls s ~include_frontend:false ~include_software:false in
  let hw_sw = Sample.total_stalls s ~include_frontend:false ~include_software:true in
  let all = Sample.total_stalls s ~include_frontend:true ~include_software:true in
  Alcotest.(check bool) "software adds" true (hw_sw >= hw);
  Alcotest.(check bool) "frontend adds" true (all >= hw_sw)

let test_series_sorting_and_validation () =
  let r4 = run_once ~threads:4 () and r2 = run_once ~threads:2 () in
  let s4 = Sample.of_run ~plugins:[] ~vendor:Topology.Amd r4 in
  let s2 = Sample.of_run ~plugins:[] ~vendor:Topology.Amd r2 in
  let series = Series.make ~machine:Machines.opteron48 ~spec_name:"x" [ s4; s2 ] in
  Alcotest.(check (array (float 0.0))) "sorted" [| 2.0; 4.0 |] (Series.threads series);
  Alcotest.check_raises "duplicate rejected" (Invalid_argument "Series.make: duplicate thread count")
    (fun () -> ignore (Series.make ~machine:Machines.opteron48 ~spec_name:"x" [ s2; s2 ]))

let test_collector_full_series () =
  let series =
    Collector.collect
      ~options:{ Collector.default_options with Collector.plugins = [ Plugin.swisstm ] }
      ~machine:Machines.opteron48 ~spec:stm_spec
      ~thread_counts:(Collector.default_thread_counts ~max:6)
      ()
  in
  Alcotest.(check int) "six samples" 6 (Array.length series.Series.samples);
  Alcotest.(check int) "max threads" 6 (Series.max_threads series);
  let times = Series.times series in
  Alcotest.(check bool) "parallelism helps initially" true (times.(5) < times.(0));
  let aborts = Series.category_values series "stm-abort" in
  Alcotest.(check bool) "aborts grow with threads" true (aborts.(5) > aborts.(0))

let test_collector_repetitions_smooth () =
  let opts reps = { Collector.default_options with Collector.repetitions = reps } in
  let s1 =
    Collector.collect ~options:(opts 1) ~machine:Machines.opteron48 ~spec:stm_spec ~thread_counts:[ 4 ] ()
  in
  let s5 =
    Collector.collect ~options:(opts 5) ~machine:Machines.opteron48 ~spec:stm_spec ~thread_counts:[ 4 ] ()
  in
  (* Averaged value differs from the single seed's (they use distinct seeds)
     but must be in the same ballpark. *)
  let t1 = (Series.times s1).(0) and t5 = (Series.times s5).(0) in
  if t5 <= 0.0 || Float.abs (t1 -. t5) > 0.5 *. t1 then
    Alcotest.failf "averaging implausible: %g vs %g" t1 t5

let test_series_truncate () =
  let series =
    Collector.collect ~machine:Machines.opteron48 ~spec:stm_spec
      ~thread_counts:(Collector.default_thread_counts ~max:8)
      ()
  in
  let cut = Series.truncate series ~max_threads:3 in
  Alcotest.(check int) "3 samples kept" 3 (Array.length cut.Series.samples);
  Alcotest.check_raises "empty truncate" (Invalid_argument "Series.truncate: no samples left")
    (fun () -> ignore (Series.truncate series ~max_threads:0))

let test_collector_validation () =
  Alcotest.check_raises "no thread counts" (Invalid_argument "Collector.collect: no thread counts")
    (fun () ->
      ignore (Collector.collect ~machine:Machines.opteron48 ~spec:stm_spec ~thread_counts:[] ()))

(* --- report files, plugin config, csv export ----------------------- *)

let test_report_file_roundtrip () =
  let r = run_once ~threads:4 () in
  let report = Report_file.render r in
  (* Scanning the rendered report recovers exactly the per-thread aborts. *)
  let scanned = Report_file.scan ~expression:"stm-abort-cycles %d" report in
  Alcotest.(check int) "one value per thread" 4 (List.length scanned);
  let total = List.fold_left ( +. ) 0.0 scanned in
  let expect = Estima_sim.Ledger.get r.Engine.ledger Estima_sim.Stall.Stm_abort in
  if Float.abs (total -. expect) > 4.0 then
    Alcotest.failf "report roundtrip off: %.0f vs %.0f" total expect

let test_report_scan_expression_validation () =
  Alcotest.check_raises "no %d" (Invalid_argument "Report_file.scan: expression must contain exactly one %d")
    (fun () -> ignore (Report_file.scan ~expression:"cycles" "x"));
  Alcotest.check_raises "two %d" (Invalid_argument "Report_file.scan: expression must contain exactly one %d")
    (fun () -> ignore (Report_file.scan ~expression:"%d and %d" "x"))

let test_report_scan_suffix () =
  let text = "a 12 cycles\nb 30 cycles\nc 7 misses\n" in
  Alcotest.(check (list (float 0.0))) "suffix filters" [ 12.0; 30.0 ]
    (Report_file.scan ~expression:"%d cycles" text)

let test_plugin_config_parse () =
  let config =
    "# swisstm statistics\n\
     name stm-abort\n\
     source stm.stats\n\
     expression stm-abort-cycles %d\n\
     combine sum\n\
     \n\
     name sync\n\
     source stdout\n\
     expression lock-spin-cycles %d\n\
     combine max\n"
  in
  match Plugin_config.parse config with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      Alcotest.(check int) "two stanzas" 2 (List.length entries);
      let first = List.hd entries in
      Alcotest.(check string) "name" "stm-abort" first.Plugin_config.name;
      Alcotest.(check string) "source" "stm.stats" first.Plugin_config.source;
      Alcotest.(check bool) "combine" true (first.Plugin_config.combine = Plugin.Sum);
      let second = List.nth entries 1 in
      Alcotest.(check bool) "max" true (second.Plugin_config.combine = Plugin.Max)

let test_plugin_config_errors () =
  (match Plugin_config.parse "name x\nsource y\n" with
  | Error e -> Alcotest.(check bool) "missing expression named" true
      (astring_free_contains e "expression")
  | Ok _ -> Alcotest.fail "incomplete stanza accepted");
  match Plugin_config.parse "name x\nbogus y\n" with
  | Error e -> Alcotest.(check bool) "unknown field named" true (astring_free_contains e "bogus")
  | Ok _ -> Alcotest.fail "unknown field accepted"

let test_plugin_config_read_from_run () =
  let r = run_once ~threads:6 () in
  let entry =
    {
      Plugin_config.name = "aborts";
      source = "stdout";
      expression = "stm-abort-cycles %d";
      combine = Plugin.Sum;
    }
  in
  let v = Plugin_config.read_from_run entry r in
  let expect = Estima_sim.Ledger.get r.Engine.ledger Estima_sim.Stall.Stm_abort in
  if Float.abs (v -. expect) > 6.0 then Alcotest.failf "config loop off: %.0f vs %.0f" v expect

let test_config_plugins_in_collector () =
  (* A configuration-file plugin travels the full loop: the simulated
     runtime's report is rendered per run, scanned by the expression, and
     the combined value appears as a software category in every sample. *)
  let entry =
    {
      Plugin_config.name = "custom-aborts";
      source = "stm.stats";
      expression = "stm-abort-cycles %d";
      combine = Plugin.Sum;
    }
  in
  let series =
    Collector.collect
      ~options:
        {
          Collector.seed = 5;
          plugins = [ Plugin.swisstm ];
          config_plugins = [ entry ];
          repetitions = 1;
        }
      ~machine:Machines.opteron48 ~spec:stm_spec ~thread_counts:[ 2; 8 ] ()
  in
  let builtin = Series.category_values series "stm-abort" in
  let custom = Series.category_values series "custom-aborts" in
  Array.iteri
    (fun i v ->
      (* The report rounds to whole cycles per thread. *)
      if Float.abs (v -. builtin.(i)) > 10.0 then
        Alcotest.failf "config plugin diverges from built-in: %.0f vs %.0f" v builtin.(i))
    custom

let test_csv_series () =
  let r = run_once ~threads:2 () in
  let s = Sample.of_run ~plugins:[ Plugin.swisstm ] ~vendor:Topology.Amd r in
  let series = Series.make ~machine:Machines.opteron48 ~spec_name:"x" [ s ] in
  let csv = Csv_export.series_to_csv series in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row" 2 (List.length lines);
  Alcotest.(check bool) "header names columns" true (astring_free_contains (List.hd lines) "0D8h");
  Alcotest.(check bool) "software column present" true (astring_free_contains (List.hd lines) "stm-abort")

let test_csv_prediction_guard () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Csv_export.prediction_to_csv: column y length mismatch") (fun () ->
      ignore (Csv_export.prediction_to_csv ~grid:[| 1.0; 2.0 |] ~columns:[ ("y", [| 1.0 |]) ]))

let suite =
  [
    ("event tables", `Quick, test_event_tables);
    ("event find", `Quick, test_event_find);
    ("attribution weights sum to one", `Quick, test_attribution_weights_sum_to_one);
    ("attribution conserves cycles", `Quick, test_attribution_conserves_cycles);
    ("plugin builtins valid", `Quick, test_plugin_pthread_rejects_nothing);
    ("plugin rejects hardware causes", `Quick, test_plugin_rejects_hardware_causes);
    ("plugin reads stm aborts", `Quick, test_plugin_reads_stm_aborts);
    ("plugin combines", `Quick, test_plugin_combines);
    ("sample of run", `Quick, test_sample_of_run);
    ("sample categories", `Quick, test_sample_categories);
    ("sample total stalls", `Quick, test_sample_total_stalls);
    ("series sorting and validation", `Quick, test_series_sorting_and_validation);
    ("collector full series", `Quick, test_collector_full_series);
    ("collector repetitions smooth", `Quick, test_collector_repetitions_smooth);
    ("series truncate", `Quick, test_series_truncate);
    ("collector validation", `Quick, test_collector_validation);
    ("report file roundtrip", `Quick, test_report_file_roundtrip);
    ("report scan expression validation", `Quick, test_report_scan_expression_validation);
    ("report scan suffix", `Quick, test_report_scan_suffix);
    ("plugin config parse", `Quick, test_plugin_config_parse);
    ("plugin config errors", `Quick, test_plugin_config_errors);
    ("plugin config read from run", `Quick, test_plugin_config_read_from_run);
    ("config plugins in collector", `Quick, test_config_plugins_in_collector);
    ("csv series", `Quick, test_csv_series);
    ("csv prediction guard", `Quick, test_csv_prediction_guard);
  ]
