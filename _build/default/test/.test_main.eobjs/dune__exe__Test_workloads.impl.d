test/test_workloads.ml: Alcotest Apps Engine Estima_counters Estima_machine Estima_sim Estima_workloads List Machines Micro Parsec Profile Spec Stamp Suite Variants
