test/test_machine.ml: Alcotest Allocation Array Estima_machine Frequency Host List Machines Topology
