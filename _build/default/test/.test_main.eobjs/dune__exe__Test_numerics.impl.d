test/test_numerics.ml: Alcotest Array Estima_numerics Float Fun Linear_fit List Lm Mat Printf Qr Rng Stats Vec
