test/test_simulator.ml: Alcotest Array Cache Engine Estima_machine Estima_numerics Estima_sim Float Ledger List Lock Machines Memory Spec Stall Stm
