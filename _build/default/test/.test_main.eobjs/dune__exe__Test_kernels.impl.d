test/test_kernels.ml: Alcotest Array Catalogue Cubic_ln Estima_kernels Estima_numerics Exp_rat Fit Float Kernel List Lm Mat Poly25 Rational Vec
