(* Developer tool: print raw simulator scalability curves for every
   workload, to sanity-check profiles against the published behaviour. *)

open Estima_machine
open Estima_sim
open Estima_workloads

let counts = [ 1; 2; 4; 8; 12; 16; 24; 32; 40; 48 ]

let () =
  let machine =
    match Sys.argv with
    | [| _; name |] -> (
        match Machines.find name with
        | Some m -> m
        | None -> failwith ("unknown machine " ^ name))
    | _ -> Machines.opteron48
  in
  let max_threads = Topology.hardware_threads machine in
  Printf.printf "machine: %s\n%!" machine.Topology.name;
  Printf.printf "%-24s %s\n" "workload"
    (String.concat " " (List.map (fun n -> Printf.sprintf "%8d" n) (List.filter (fun n -> n <= max_threads) counts)));
  List.iter
    (fun entry ->
      let spec = entry.Suite.spec in
      let t1 = ref None in
      let cells =
        List.filter_map
          (fun n ->
            if n > max_threads then None
            else begin
              let r = Engine.run ~seed:11 ~machine ~spec ~threads:n () in
              let t = r.Engine.time_seconds in
              (match !t1 with None -> t1 := Some t | Some _ -> ());
              let base = Option.get !t1 in
              Some (Printf.sprintf "%8.2f" (base /. t))
            end)
          counts
      in
      Printf.printf "%-24s %s\n%!" spec.Spec.name (String.concat " " cells))
    Suite.all
