(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed as text tables/series), then times the
   pipeline's building blocks with Bechamel.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe T4 F8 ...       run selected experiments
     bench/main.exe --no-micro      skip the Bechamel microbenchmarks
     bench/main.exe --fit-timing    only report fit-search timing per
                                    pipeline stage (trace spans+counters) *)

open Estima_machine
open Estima_sim
open Estima_workloads
open Estima_counters
open Estima

let microbenchmarks () =
  let open Bechamel in
  let xs = Array.init 12 (fun i -> float_of_int (i + 1)) in
  let ys = Array.map (fun x -> 1e6 *. (2.0 +. (6.0 *. x /. (x +. 8.0)))) xs in
  let fit_test kernel =
    Test.make ~name:("fit-" ^ kernel.Estima_kernels.Kernel.name)
      (Staged.stage (fun () -> ignore (Estima_kernels.Fit.fit kernel ~xs ~ys)))
  in
  let approximation_test =
    Test.make ~name:"approximation-full-selection"
      (Staged.stage (fun () ->
           ignore (Approximation.approximate ~xs ~ys ~target_max:48.0 ~require_nonnegative:true ())))
  in
  let engine_test =
    let spec = Stamp.genome in
    Test.make ~name:"simulator-genome-8-threads"
      (Staged.stage (fun () -> ignore (Engine.run ~seed:3 ~machine:Machines.opteron48 ~spec ~threads:8 ())))
  in
  let predict_test =
    let entry = Option.get (Suite.find "intruder") in
    let series =
      Collector.collect
        ~options:{ Collector.default_options with Collector.seed = 9; plugins = entry.Suite.plugins; repetitions = 1 }
        ~machine:(Machines.restrict_sockets Machines.opteron48 ~sockets:1)
        ~spec:entry.Suite.spec
        ~thread_counts:(Collector.default_thread_counts ~max:12)
        ()
    in
    Test.make ~name:"predictor-intruder-12-to-48"
      (Staged.stage (fun () ->
           ignore
             (Predictor.predict
                ~config:{ Predictor.default_config with Predictor.include_software = true }
                ~series ~target_max:48 ())))
  in
  let tests =
    Test.make_grouped ~name:"estima"
      (List.map fit_test Estima_kernels.Catalogue.all
      @ [ approximation_test; engine_test; predict_test ])
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Printf.printf "\n";
  Estima_repro.Render.heading "[BENCH] Bechamel microbenchmarks (monotonic clock)";
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ estimate ] -> Printf.printf "%-36s %12.1f ns/run\n" name estimate
      | _ -> Printf.printf "%-36s (no estimate)\n" name)
    results;
  flush stdout

(* Fit-search timing: run one representative prediction under a trace
   recorder and print where the selection time goes — per-category spans,
   the factor fit, and the kernel-fit counters.  The instrumentation is
   enabled only here (a sink is installed), so the regular benchmark
   numbers are collected with tracing off. *)
let fit_timing () =
  let entry = Option.get (Suite.find "intruder") in
  let series =
    Collector.collect
      ~options:
        { Collector.default_options with Collector.seed = 9; plugins = entry.Suite.plugins; repetitions = 1 }
      ~machine:(Machines.restrict_sockets Machines.opteron48 ~sockets:1)
      ~spec:entry.Suite.spec
      ~thread_counts:(Collector.default_thread_counts ~max:12)
      ()
  in
  let recorder = Estima_obs.Recorder.create () in
  let t0 = Sys.time () in
  let _prediction =
    Estima_obs.Recorder.record recorder (fun () ->
        Predictor.predict
          ~config:{ Predictor.default_config with Predictor.include_software = true }
          ~series ~target_max:48 ())
  in
  let elapsed = Sys.time () -. t0 in
  Estima_repro.Render.heading "[BENCH] fit-search timing per stage (intruder, 12 -> 48 cores)";
  Format.printf "%a@." Estima_obs.Trace_render.pp_span_stats (Estima_obs.Recorder.span_stats recorder);
  Format.printf "@.counters:@.%a@." Estima_obs.Trace_render.pp_counters
    (Estima_obs.Recorder.counters recorder);
  Printf.printf "total predict time: %.3f ms (cpu)\n%!" (1e3 *. elapsed)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--fit-timing" args then fit_timing ()
  else begin
  let micro = not (List.mem "--no-micro" args) in
  let ids = List.filter (fun a -> a <> "--no-micro") args in
  let t0 = Unix.gettimeofday () in
  (match ids with
  | [] -> Estima_repro.All.run_all ()
  | ids ->
      List.iter
        (fun id ->
          match Estima_repro.All.run_one id with
          | Ok () -> ()
          | Error msg ->
              prerr_endline msg;
              exit 1)
        ids);
  let hits, misses = Estima_repro.Lab.cache_stats () in
  Printf.printf "\n[reproduction complete in %.0f s; measurement cache: %d hits, %d sweeps]\n%!"
    (Unix.gettimeofday () -. t0) hits misses;
  if micro then microbenchmarks ()
  end
