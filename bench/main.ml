(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed as text tables/series), then times the
   pipeline's building blocks with Bechamel.

   Usage:
     bench/main.exe                   run everything
     bench/main.exe T4 F8 ...         run selected experiments
     bench/main.exe --list            print the experiment ids and exit
     bench/main.exe --no-micro        skip the Bechamel microbenchmarks
     bench/main.exe --fit-timing      only report fit-search timing per
                                      pipeline stage (trace spans+counters)
     bench/main.exe --accuracy        backtest the validation corpus and
                                      print the T4-style accuracy table
     bench/main.exe --jobs N          run fit search and experiments on N
                                      domains (default: ESTIMA_JOBS or 1)
     bench/main.exe --par-scaling [ID ...]
                                      time the reproduction (or the given
                                      experiments) at jobs in {1,2,4,cores},
                                      check the outputs are byte-identical,
                                      and write BENCH_par.json *)

open Estima_machine
open Estima_sim
open Estima_workloads
open Estima_counters
open Estima

let microbenchmarks () =
  let open Bechamel in
  let xs = Array.init 12 (fun i -> float_of_int (i + 1)) in
  let ys = Array.map (fun x -> 1e6 *. (2.0 +. (6.0 *. x /. (x +. 8.0)))) xs in
  let fit_test kernel =
    Test.make ~name:("fit-" ^ kernel.Estima_kernels.Kernel.name)
      (Staged.stage (fun () -> ignore (Estima_kernels.Fit.fit kernel ~xs ~ys)))
  in
  let approximation_test =
    Test.make ~name:"approximation-full-selection"
      (Staged.stage (fun () ->
           ignore (Approximation.approximate ~xs ~ys ~target_max:48.0 ~require_nonnegative:true ())))
  in
  let engine_test =
    let spec = Stamp.genome in
    Test.make ~name:"simulator-genome-8-threads"
      (Staged.stage (fun () -> ignore (Engine.run ~seed:3 ~machine:Machines.opteron48 ~spec ~threads:8 ())))
  in
  let predict_test =
    let entry = Option.get (Suite.find "intruder") in
    let series =
      Collector.collect
        ~options:{ Collector.default_options with Collector.seed = 9; plugins = entry.Suite.plugins; repetitions = 1 }
        ~machine:(Machines.restrict_sockets Machines.opteron48 ~sockets:1)
        ~spec:entry.Suite.spec
        ~thread_counts:(Collector.default_thread_counts ~max:12)
        ()
    in
    Test.make ~name:"predictor-intruder-12-to-48"
      (Staged.stage (fun () ->
           ignore
             (Predictor.predict
                ~config:{ Predictor.default_config with Predictor.include_software = true }
                ~series ~target_max:48 ())))
  in
  let tests =
    Test.make_grouped ~name:"estima"
      (List.map fit_test Estima_kernels.Catalogue.all
      @ [ approximation_test; engine_test; predict_test ])
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Printf.printf "\n";
  Estima_repro.Render.heading "[BENCH] Bechamel microbenchmarks (monotonic clock)";
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ estimate ] -> Printf.printf "%-36s %12.1f ns/run\n" name estimate
      | _ -> Printf.printf "%-36s (no estimate)\n" name)
    results;
  flush stdout

(* Fit-search timing: run one representative prediction under a trace
   recorder and print where the selection time goes — per-category spans,
   the factor fit, and the kernel-fit counters.  The instrumentation is
   enabled only here (a sink is installed), so the regular benchmark
   numbers are collected with tracing off. *)
let fit_timing () =
  let entry = Option.get (Suite.find "intruder") in
  let series =
    Collector.collect
      ~options:
        { Collector.default_options with Collector.seed = 9; plugins = entry.Suite.plugins; repetitions = 1 }
      ~machine:(Machines.restrict_sockets Machines.opteron48 ~sockets:1)
      ~spec:entry.Suite.spec
      ~thread_counts:(Collector.default_thread_counts ~max:12)
      ()
  in
  let recorder = Estima_obs.Recorder.create () in
  let t0 = Sys.time () in
  let _prediction =
    Estima_obs.Recorder.record recorder (fun () ->
        Predictor.predict
          ~config:{ Predictor.default_config with Predictor.include_software = true }
          ~series ~target_max:48 ())
  in
  let elapsed = Sys.time () -. t0 in
  Estima_repro.Render.heading "[BENCH] fit-search timing per stage (intruder, 12 -> 48 cores)";
  Format.printf "%a@." Estima_obs.Trace_render.pp_span_stats (Estima_obs.Recorder.span_stats recorder);
  Format.printf "@.counters:@.%a@." Estima_obs.Trace_render.pp_counters
    (Estima_obs.Recorder.counters recorder);
  Printf.printf "total predict time: %.3f ms (cpu)\n%!" (1e3 *. elapsed)

(* ------------------------- accuracy table ------------------------- *)

(* The held-out backtest of the validation corpus (Estima_validate),
   printed as the T4-style accuracy table — the human-readable view of
   what `estima_cli validate` gates on.  No golden comparison and no
   differential here: this is the report, not the gate. *)
let accuracy () =
  Estima_repro.Render.heading
    "[BENCH] validation-corpus accuracy (measure 1 socket, predict full machine)";
  match Estima_validate.Corpus.run Estima_validate.Corpus.default with
  | Error d ->
      prerr_endline (Diag.render d);
      exit (Diag.exit_code d)
  | Ok reports ->
      print_string (Estima_validate.Report.table reports);
      print_newline ();
      print_string (Estima_validate.Report.summary_lines (Estima_validate.Report.summarize reports))

(* ----------------------- parallel scaling ------------------------- *)

let resolve_experiments ids =
  let ids = match ids with [] -> List.map fst Estima_repro.All.experiments | ids -> ids in
  List.map
    (fun id ->
      match Estima_repro.All.find id with
      | Some run -> (String.uppercase_ascii id, run)
      | None ->
          prerr_endline
            (Printf.sprintf "unknown experiment %S; valid ids: %s" id
               (String.concat ", " (List.map fst Estima_repro.All.experiments)));
          exit 1)
    ids

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Time the selected experiments at each jobs setting, cold-starting the
   measurement cache every run so the runs are comparable, and verify
   that every parallel run's output is byte-identical to jobs=1 —
   the determinism guarantee the parallel harness makes. *)
let par_scaling ids =
  let experiments = resolve_experiments ids in
  let cores = Domain.recommended_domain_count () in
  let jobs_settings = List.sort_uniq compare [ 1; 2; 4; cores ] in
  let run_once jobs =
    Estima_par.Fanout.set_jobs (Some jobs);
    Estima_repro.Lab.reset_cache ();
    let t0 = Unix.gettimeofday () in
    let (), output =
      Estima_repro.Render.with_capture (fun () -> Estima_repro.All.run_many experiments)
    in
    let wall = Unix.gettimeofday () -. t0 in
    Estima_par.Fanout.set_jobs None;
    (wall, output)
  in
  Estima_repro.Render.heading "[BENCH] parallel scaling of the reproduction harness";
  Printf.printf "experiments: %s\ncores: %d\n\n" (String.concat ", " (List.map fst experiments)) cores;
  let runs =
    List.map
      (fun jobs ->
        let wall, output = run_once jobs in
        Printf.printf "jobs=%-3d %8.2f s  (%d bytes of output)\n%!" jobs wall (String.length output);
        (jobs, wall, output))
      jobs_settings
  in
  let _, base_wall, base_output = List.hd runs in
  let rows =
    List.map
      (fun (jobs, wall, output) ->
        let identical = String.equal output base_output in
        if not identical then
          Printf.printf "WARNING: jobs=%d output differs from jobs=1 (%d vs %d bytes)\n" jobs
            (String.length output) (String.length base_output);
        Printf.sprintf
          "    { \"jobs\": %d, \"wall_s\": %.4f, \"speedup_vs_jobs1\": %.3f, \"output_bytes\": %d, \
           \"output_identical_to_jobs1\": %b }"
          jobs wall (base_wall /. wall) (String.length output) identical)
      runs
  in
  let all_identical =
    List.for_all (fun (_, _, output) -> String.equal output base_output) runs
  in
  Printf.printf "\noutputs byte-identical across jobs settings: %b\n" all_identical;
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"par-scaling\",\n  \"cores\": %d,\n  \"experiments\": [%s],\n  \"runs\": [\n%s\n  \
       ],\n  \"outputs_identical\": %b\n}\n"
      cores
      (String.concat ", " (List.map (fun (id, _) -> "\"" ^ json_escape id ^ "\"") experiments))
      (String.concat ",\n" rows) all_identical
  in
  let oc = open_out "BENCH_par.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_par.json\n%!";
  if not all_identical then exit 1

(* ----------------------------- driver ----------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --jobs N / -j N applies to every mode; consumed before dispatch. *)
  let rec extract_jobs acc = function
    | [] -> (None, List.rev acc)
    | ("--jobs" | "-j") :: value :: rest -> (
        match int_of_string_opt value with
        | Some n when n >= 1 -> (Some n, List.rev_append acc rest)
        | _ ->
            prerr_endline "bench: --jobs expects an integer >= 1";
            exit 1)
    | [ ("--jobs" | "-j") ] ->
        prerr_endline "bench: --jobs expects an integer >= 1";
        exit 1
    | a :: rest -> extract_jobs (a :: acc) rest
  in
  let jobs, args = extract_jobs [] args in
  (match jobs with Some n -> Estima_par.Fanout.set_jobs (Some n) | None -> ());
  if List.mem "--list" args then
    List.iter (fun (id, _) -> print_endline id) Estima_repro.All.experiments
  else if List.mem "--fit-timing" args then fit_timing ()
  else if List.mem "--accuracy" args then accuracy ()
  else if List.mem "--par-scaling" args then
    par_scaling (List.filter (fun a -> a <> "--par-scaling") args)
  else begin
    let micro = not (List.mem "--no-micro" args) in
    let ids = List.filter (fun a -> a <> "--no-micro") args in
    let t0 = Unix.gettimeofday () in
    (match ids with
    | [] -> Estima_repro.All.run_all ()
    | ids -> Estima_repro.All.run_many (resolve_experiments ids));
    let hits, misses = Estima_repro.Lab.cache_stats () in
    Printf.printf "\n[reproduction complete in %.0f s; measurement cache: %d hits, %d sweeps]\n%!"
      (Unix.gettimeofday () -. t0) hits misses;
    if micro then microbenchmarks ()
  end
