(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed as text tables/series), then times the
   pipeline's building blocks with Bechamel.

   Usage:
     bench/main.exe                   run everything
     bench/main.exe T4 F8 ...         run selected experiments
     bench/main.exe --list            print the experiment ids and exit
     bench/main.exe --no-micro        skip the Bechamel microbenchmarks
     bench/main.exe --fit-timing      only report fit-search timing per
                                      pipeline stage (trace spans+counters)
     bench/main.exe --accuracy        backtest the validation corpus and
                                      print the T4-style accuracy table
     bench/main.exe --jobs N          run fit search and experiments on N
                                      domains (default: ESTIMA_JOBS or 1)
     bench/main.exe --store DIR       persist measurement series in the
                                      content-addressed store under DIR
     bench/main.exe --par-scaling [ID ...]
                                      time the reproduction (or the given
                                      experiments) at jobs in {1,2,4,cores},
                                      check the outputs are byte-identical,
                                      and write BENCH_par.json
     bench/main.exe --sim-scaling [ID ...]
                                      time each experiment cold (empty
                                      measurement store) then warm (same
                                      store dir), check byte-identity, and
                                      write BENCH_sim.json (default set:
                                      F1 F2 F5)
     bench/main.exe --serve-scaling   spawn estima_serve --tcp per cell of
                                      a jobs x clients grid, play a seeded
                                      Estima_load plan closed-loop with
                                      byte-exact verification, and write
                                      BENCH_serve.json (throughput, p50/
                                      p90/p99/max latency per cell) *)

open Estima_machine
open Estima_sim
open Estima_workloads
open Estima_counters
open Estima

let microbenchmarks () =
  let open Bechamel in
  let xs = Array.init 12 (fun i -> float_of_int (i + 1)) in
  let ys = Array.map (fun x -> 1e6 *. (2.0 +. (6.0 *. x /. (x +. 8.0)))) xs in
  let fit_test kernel =
    Test.make ~name:("fit-" ^ kernel.Estima_kernels.Kernel.name)
      (Staged.stage (fun () -> ignore (Estima_kernels.Fit.fit kernel ~xs ~ys)))
  in
  let approximation_test =
    Test.make ~name:"approximation-full-selection"
      (Staged.stage (fun () ->
           ignore (Approximation.approximate ~xs ~ys ~target_max:48.0 ~require_nonnegative:true ())))
  in
  let engine_test =
    let spec = Stamp.genome in
    Test.make ~name:"simulator-genome-8-threads"
      (Staged.stage (fun () -> ignore (Engine.run ~seed:3 ~machine:Machines.opteron48 ~spec ~threads:8 ())))
  in
  let predict_test =
    let entry = Option.get (Suite.find "intruder") in
    let series =
      Collector.collect
        ~options:{ Collector.default_options with Collector.seed = 9; plugins = entry.Suite.plugins; repetitions = 1 }
        ~machine:(Machines.restrict_sockets Machines.opteron48 ~sockets:1)
        ~spec:entry.Suite.spec
        ~thread_counts:(Collector.default_thread_counts ~max:12)
        ()
    in
    Test.make ~name:"predictor-intruder-12-to-48"
      (Staged.stage (fun () ->
           ignore
             (Predictor.predict
                ~config:{ Predictor.default_config with Predictor.include_software = true }
                ~series ~target_max:48 ())))
  in
  let tests =
    Test.make_grouped ~name:"estima"
      (List.map fit_test Estima_kernels.Catalogue.all
      @ [ approximation_test; engine_test; predict_test ])
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Printf.printf "\n";
  Estima_repro.Render.heading "[BENCH] Bechamel microbenchmarks (monotonic clock)";
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ estimate ] -> Printf.printf "%-36s %12.1f ns/run\n" name estimate
      | _ -> Printf.printf "%-36s (no estimate)\n" name)
    results;
  flush stdout

(* Fit-search timing: run one representative prediction under a trace
   recorder and print where the selection time goes — per-category spans,
   the factor fit, and the kernel-fit counters.  The instrumentation is
   enabled only here (a sink is installed), so the regular benchmark
   numbers are collected with tracing off. *)
let fit_timing () =
  let entry = Option.get (Suite.find "intruder") in
  let series =
    Collector.collect
      ~options:
        { Collector.default_options with Collector.seed = 9; plugins = entry.Suite.plugins; repetitions = 1 }
      ~machine:(Machines.restrict_sockets Machines.opteron48 ~sockets:1)
      ~spec:entry.Suite.spec
      ~thread_counts:(Collector.default_thread_counts ~max:12)
      ()
  in
  let recorder = Estima_obs.Recorder.create () in
  let t0 = Sys.time () in
  let _prediction =
    Estima_obs.Recorder.record recorder (fun () ->
        Predictor.predict
          ~config:{ Predictor.default_config with Predictor.include_software = true }
          ~series ~target_max:48 ())
  in
  let elapsed = Sys.time () -. t0 in
  Estima_repro.Render.heading "[BENCH] fit-search timing per stage (intruder, 12 -> 48 cores)";
  Format.printf "%a@." Estima_obs.Trace_render.pp_span_stats (Estima_obs.Recorder.span_stats recorder);
  Format.printf "@.counters:@.%a@." Estima_obs.Trace_render.pp_counters
    (Estima_obs.Recorder.counters recorder);
  Printf.printf "total predict time: %.3f ms (cpu)\n%!" (1e3 *. elapsed)

(* ------------------------- accuracy table ------------------------- *)

(* The held-out backtest of the validation corpus (Estima_validate),
   printed as the T4-style accuracy table — the human-readable view of
   what `estima_cli validate` gates on.  No golden comparison and no
   differential here: this is the report, not the gate. *)
let accuracy () =
  Estima_repro.Render.heading
    "[BENCH] validation-corpus accuracy (measure 1 socket, predict full machine)";
  match Estima_validate.Corpus.run Estima_validate.Corpus.default with
  | Error d ->
      prerr_endline (Diag.render d);
      exit (Diag.exit_code d)
  | Ok reports ->
      print_string (Estima_validate.Report.table reports);
      print_newline ();
      print_string (Estima_validate.Report.summary_lines (Estima_validate.Report.summarize reports))

(* ----------------------- parallel scaling ------------------------- *)

let resolve_experiments ids =
  let ids = match ids with [] -> List.map fst Estima_repro.All.experiments | ids -> ids in
  List.map
    (fun id ->
      match Estima_repro.All.find id with
      | Some run -> (String.uppercase_ascii id, run)
      | None ->
          prerr_endline
            (Printf.sprintf "unknown experiment %S; valid ids: %s" id
               (String.concat ", " (List.map fst Estima_repro.All.experiments)));
          exit 1)
    ids

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Host metadata stamped into every BENCH_*.json so trajectory files
   collected on different machines are comparable: available
   parallelism, compiler, and the commit the binary was built from
   ("unknown" outside a git checkout). *)
let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
      | exception _ -> "unknown")

let host_json () =
  Printf.sprintf "\"host\": { \"cores\": %d, \"ocaml\": \"%s\", \"git\": \"%s\" }"
    (Domain.recommended_domain_count ())
    (json_escape Sys.ocaml_version)
    (json_escape (git_describe ()))

(* Time the selected experiments at each jobs setting, cold-starting the
   measurement cache every run so the runs are comparable, and verify
   that every parallel run's output is byte-identical to jobs=1 —
   the determinism guarantee the parallel harness makes. *)
let par_scaling ids =
  let experiments = resolve_experiments ids in
  let cores = Domain.recommended_domain_count () in
  let jobs_settings = List.sort_uniq compare [ 1; 2; 4; cores ] in
  let run_once jobs =
    Estima_par.Fanout.set_jobs (Some jobs);
    Estima_repro.Lab.reset_cache ();
    let t0 = Unix.gettimeofday () in
    let (), output =
      Estima_repro.Render.with_capture (fun () -> Estima_repro.All.run_many experiments)
    in
    let wall = Unix.gettimeofday () -. t0 in
    Estima_par.Fanout.set_jobs None;
    (wall, output)
  in
  Estima_repro.Render.heading "[BENCH] parallel scaling of the reproduction harness";
  Printf.printf "experiments: %s\ncores: %d\n\n" (String.concat ", " (List.map fst experiments)) cores;
  let runs =
    List.map
      (fun jobs ->
        let wall, output = run_once jobs in
        Printf.printf "jobs=%-3d %8.2f s  (%d bytes of output)\n%!" jobs wall (String.length output);
        (jobs, wall, output))
      jobs_settings
  in
  let _, base_wall, base_output = List.hd runs in
  let rows =
    List.map
      (fun (jobs, wall, output) ->
        let identical = String.equal output base_output in
        if not identical then
          Printf.printf "WARNING: jobs=%d output differs from jobs=1 (%d vs %d bytes)\n" jobs
            (String.length output) (String.length base_output);
        (* More domains than cores cannot speed anything up: flag the row
           so a trajectory diff reads it as "host too small", not as a
           parallelism regression. *)
        Printf.sprintf
          "    { \"jobs\": %d, \"wall_s\": %.4f, \"speedup_vs_jobs1\": %.3f, \"output_bytes\": %d, \
           \"output_identical_to_jobs1\": %b, \"parallelism_unavailable\": %b }"
          jobs wall (base_wall /. wall) (String.length output) identical (jobs > cores))
      runs
  in
  let all_identical =
    List.for_all (fun (_, _, output) -> String.equal output base_output) runs
  in
  Printf.printf "\noutputs byte-identical across jobs settings: %b\n" all_identical;
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"par-scaling\",\n  %s,\n  \"cores\": %d,\n  \"experiments\": [%s],\n  \
       \"runs\": [\n%s\n  ],\n  \"outputs_identical\": %b\n}\n"
      (host_json ()) cores
      (String.concat ", " (List.map (fun (id, _) -> "\"" ^ json_escape id ^ "\"") experiments))
      (String.concat ",\n" rows) all_identical
  in
  let oc = open_out "BENCH_par.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_par.json\n%!";
  if not all_identical then exit 1

(* ------------------------ simulation scaling ---------------------- *)

(* Cold-vs-warm trajectory of the measurement plane: run each experiment
   against an initially empty disk store (cold — every series is
   simulated, then persisted), drop the in-memory tier, and run it again
   over the same directory (warm — every series is read back).  Outputs
   must be byte-identical; the wall-clock pair per experiment is the
   number BENCH_sim.json tracks over time. *)
let sim_scaling ids =
  let experiments = resolve_experiments (match ids with [] -> [ "F1"; "F2"; "F5" ] | ids -> ids) in
  let store = Estima_store.Store.default () in
  let saved_dir = Estima_store.Store.dir store in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "estima-sim-scaling.%d" (Unix.getpid ()))
  in
  Estima_store.Store.set_dir store (Some dir);
  Estima_repro.Render.heading "[BENCH] cold vs warm simulation (measurement store)";
  Printf.printf "experiments: %s\nstore: %s\n\n"
    (String.concat ", " (List.map fst experiments))
    dir;
  let time_one (id, run) =
    (* reset_cache between the two runs drops the in-memory tier, so the
       warm run exercises the disk path, not the promise table. *)
    Estima_repro.Lab.reset_cache ();
    let t0 = Unix.gettimeofday () in
    let (), cold_output = Estima_repro.Render.with_capture run in
    let cold_s = Unix.gettimeofday () -. t0 in
    Estima_repro.Lab.reset_cache ();
    let t1 = Unix.gettimeofday () in
    let (), warm_output = Estima_repro.Render.with_capture run in
    let warm_s = Unix.gettimeofday () -. t1 in
    let identical = String.equal cold_output warm_output in
    if not identical then
      Printf.printf "WARNING: %s warm output differs from cold (%d vs %d bytes)\n" id
        (String.length warm_output) (String.length cold_output);
    Printf.printf "%-4s cold %8.2f s   warm %8.2f s   (%.1fx)\n%!" id cold_s warm_s
      (cold_s /. Float.max 1e-9 warm_s);
    (id, cold_s, warm_s, identical)
  in
  let runs = List.map time_one experiments in
  Estima_store.Store.set_dir store saved_dir;
  let all_identical = List.for_all (fun (_, _, _, i) -> i) runs in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 runs in
  let cold_total = total (fun (_, c, _, _) -> c) and warm_total = total (fun (_, _, w, _) -> w) in
  Printf.printf "\ntotal: cold %.2f s, warm %.2f s; outputs byte-identical: %b\n" cold_total
    warm_total all_identical;
  let rows =
    List.map
      (fun (id, cold_s, warm_s, identical) ->
        Printf.sprintf
          "    { \"experiment\": \"%s\", \"cold_s\": %.4f, \"warm_s\": %.4f, \
           \"warm_speedup\": %.3f, \"outputs_identical\": %b }"
          (json_escape id) cold_s warm_s (cold_s /. Float.max 1e-9 warm_s) identical)
      runs
  in
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"sim-scaling\",\n  %s,\n  \"runs\": [\n%s\n  ],\n  \"cold_total_s\": \
       %.4f,\n  \"warm_total_s\": %.4f,\n  \"outputs_identical\": %b\n}\n"
      (host_json ())
      (String.concat ",\n" rows)
      cold_total warm_total all_identical
  in
  let oc = open_out "BENCH_sim.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_sim.json\n%!";
  if not all_identical then exit 1

(* ------------------------- serving scaling ------------------------ *)

(* Throughput and tail latency of estima_serve over TCP, across a jobs ×
   clients grid: for each cell a fresh server is spawned on a
   kernel-assigned port, a seeded Estima_load plan is played closed-loop
   against it, and every response is verified byte-for-byte — a cell
   only contributes numbers if it is also correct.  BENCH_serve.json is
   the trajectory file tail-latency regressions show up in. *)
let serve_scaling () =
  let module Generator = Estima_load.Generator in
  let module Driver = Estima_load.Driver in
  let module Report = Estima_load.Report in
  let exe =
    match Driver.locate_serve_exe () with
    | Some exe -> exe
    | None ->
        prerr_endline "serve-scaling: cannot find estima_serve.exe next to bench/main.exe";
        exit 1
  in
  let machine = Machines.restrict_sockets Machines.opteron48 ~sockets:1 in
  let target = Machines.opteron48 in
  let base = Config.make ~measured_on:machine ~target () in
  let payloads = Generator.suite_payloads ~machine [ "kmeans" ] in
  let requests_per_client = 15 in
  let jobs_settings = [ 1; 4 ] in
  let client_settings = [ 1; 2; 4 ] in
  Estima_repro.Render.heading "[BENCH] estima_serve TCP throughput and tail latency";
  Printf.printf "requests/client: %d, payloads: kmeans, closed loop\n\n" requests_per_client;
  let cells =
    List.concat_map
      (fun jobs ->
        List.map
          (fun clients ->
            let plan =
              Generator.plan ~payloads ~machine ~target ~base ~seed:42 ~clients
                ~requests_per_client ()
            in
            let server =
              Driver.spawn_tcp_server ~exe ~args:[ "--jobs"; string_of_int jobs ] ()
            in
            let outcome =
              Fun.protect
                ~finally:(fun () -> Driver.stop_server server)
                (fun () ->
                  Driver.run
                    (Driver.Tcp { host = server.Driver.host; port = server.Driver.port })
                    plan)
            in
            let report = Report.make plan outcome in
            let q p =
              Estima_obs.Metrics.Histogram.snapshot_quantile report.Report.latency p
            in
            let max_s = report.Report.latency.Estima_obs.Metrics.Histogram.max in
            Printf.printf
              "jobs=%-3d clients=%-3d %8.1f req/s   p50 %8.2f ms   p99 %8.2f ms   max %8.2f \
               ms   clean=%b\n\
               %!"
              jobs clients report.Report.throughput_rps (1e3 *. q 0.5) (1e3 *. q 0.99)
              (1e3 *. max_s) (Report.clean report);
            ( jobs,
              clients,
              report,
              Printf.sprintf
                "    { \"jobs\": %d, \"clients\": %d, \"requests\": %d, \"clean\": %b, \
                 \"throughput_rps\": %.2f, \"p50_s\": %.6f, \"p90_s\": %.6f, \"p99_s\": %.6f, \
                 \"max_s\": %.6f }"
                jobs clients report.Report.requests (Report.clean report)
                report.Report.throughput_rps (q 0.5) (q 0.9) (q 0.99) max_s ))
          client_settings)
      jobs_settings
  in
  let all_clean = List.for_all (fun (_, _, report, _) -> Report.clean report) cells in
  Printf.printf "\nall cells byte-clean: %b\n" all_clean;
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"serve-scaling\",\n  %s,\n  \"requests_per_client\": %d,\n  \"runs\": \
       [\n%s\n  ],\n  \"all_clean\": %b\n}\n"
      (host_json ()) requests_per_client
      (String.concat ",\n" (List.map (fun (_, _, _, row) -> row) cells))
      all_clean
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n%!";
  if not all_clean then exit 1

(* ----------------------------- driver ----------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --jobs N / -j N and --store DIR apply to every mode; consumed by
     the shared extractors (same spellings and errors as the cmdliner
     binaries) before dispatch. *)
  let jobs, args = Estima.Config.Args.extract_jobs args in
  Estima.Config.Args.apply_jobs jobs;
  let store, args = Estima.Config.Args.extract_store args in
  Estima.Config.Args.apply_store store;
  if List.mem "--list" args then
    List.iter (fun (id, _) -> print_endline id) Estima_repro.All.experiments
  else if List.mem "--fit-timing" args then fit_timing ()
  else if List.mem "--accuracy" args then accuracy ()
  else if List.mem "--par-scaling" args then
    par_scaling (List.filter (fun a -> a <> "--par-scaling") args)
  else if List.mem "--sim-scaling" args then
    sim_scaling (List.filter (fun a -> a <> "--sim-scaling") args)
  else if List.mem "--serve-scaling" args then serve_scaling ()
  else begin
    let micro = not (List.mem "--no-micro" args) in
    let ids = List.filter (fun a -> a <> "--no-micro") args in
    let t0 = Unix.gettimeofday () in
    (match ids with
    | [] -> Estima_repro.All.run_all ()
    | ids -> Estima_repro.All.run_many (resolve_experiments ids));
    let hits, misses = Estima_repro.Lab.cache_stats () in
    Printf.printf "\n[reproduction complete in %.0f s; measurement cache: %d hits, %d sweeps]\n%!"
      (Unix.gettimeofday () -. t0) hits misses;
    if micro then microbenchmarks ()
  end
